"""Tests of the transmission-interval assignment (equations (1)-(2))."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.slot_assignment import assign_transmission_intervals


class TestAssignment:
    def test_minimal_integer_slots(self):
        assignment = assign_transmission_intervals(
            [0.010, 0.021], base_time_unit_s=0.01, control_time_per_second=0.5
        )
        assert assignment.slot_counts == (1, 3)
        assert assignment.transmission_intervals_s == pytest.approx((0.01, 0.03))

    def test_zero_demand_gets_zero_slots(self):
        assignment = assign_transmission_intervals(
            [0.0, 0.005], base_time_unit_s=0.01, control_time_per_second=0.0
        )
        assert assignment.slot_counts == (0, 1)

    def test_equation_1_holds_for_every_node(self):
        required = [0.013, 0.004, 0.0301]
        assignment = assign_transmission_intervals(
            required, base_time_unit_s=0.007, control_time_per_second=0.2
        )
        for interval, demand in zip(assignment.transmission_intervals_s, required):
            assert interval >= demand - 1e-12

    def test_budget_violation_is_flagged(self):
        assignment = assign_transmission_intervals(
            [0.4, 0.4, 0.4], base_time_unit_s=0.1, control_time_per_second=0.5
        )
        assert not assignment.feasible
        assert assignment.slack_s < 0

    def test_protocol_cap_is_respected(self):
        assignment = assign_transmission_intervals(
            [0.05, 0.05],
            base_time_unit_s=0.01,
            control_time_per_second=0.0,
            max_assignable_time_per_second=0.07,
        )
        assert not assignment.feasible

    def test_exact_fit_is_feasible(self):
        assignment = assign_transmission_intervals(
            [0.05, 0.05],
            base_time_unit_s=0.05,
            control_time_per_second=0.9,
        )
        assert assignment.feasible
        assert assignment.slack_s == pytest.approx(0.0, abs=1e-12)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            assign_transmission_intervals([0.1], base_time_unit_s=0.0, control_time_per_second=0.0)
        with pytest.raises(ValueError):
            assign_transmission_intervals([-0.1], base_time_unit_s=0.1, control_time_per_second=0.0)
        with pytest.raises(ValueError):
            assign_transmission_intervals([0.1], base_time_unit_s=0.1, control_time_per_second=-0.2)

    @settings(max_examples=60, deadline=None)
    @given(
        demands=st.lists(
            st.floats(min_value=0.0, max_value=0.2), min_size=1, max_size=8
        ),
        base_unit=st.floats(min_value=1e-3, max_value=0.1),
        control=st.floats(min_value=0.0, max_value=0.9),
    )
    def test_invariants(self, demands, base_unit, control):
        assignment = assign_transmission_intervals(demands, base_unit, control)
        # Every requirement is covered by an integer number of base units.
        for count, interval, demand in zip(
            assignment.slot_counts, assignment.transmission_intervals_s, demands
        ):
            assert count >= 0
            assert interval == pytest.approx(count * base_unit)
            assert interval >= demand - 1e-9
            # Minimality: one slot less would not cover the demand.
            if count > 0:
                assert (count - 1) * base_unit < demand + 1e-9
        # Feasibility flag is consistent with the accounting identity.
        total = assignment.total_transmission_time_s
        cap = min(1.0 - control, assignment.max_assignable_time_per_second)
        assert assignment.feasible == (total <= cap + 1e-9)
