"""Tests of the search algorithms on a small, exactly solvable problem."""

from __future__ import annotations

import pytest

from repro.dse.exhaustive import ExhaustiveCapWarning, ExhaustiveSearch
from repro.dse.nsga2 import Nsga2, Nsga2Settings
from repro.dse.pareto import front_coverage, pareto_front_indices
from repro.dse.problem import EvaluatedDesign, OptimizationProblem
from repro.dse.random_search import RandomSearch
from repro.dse.runner import run_algorithm
from repro.dse.simulated_annealing import (
    MultiObjectiveSimulatedAnnealing,
    SimulatedAnnealingSettings,
)
from repro.dse.space import DesignSpace, ParameterDomain


class ToyProblem(OptimizationProblem):
    """A two-objective problem whose Pareto front is known exactly.

    The genotype encodes two integers ``a, b`` in ``[0, 15]``; the objectives
    are ``(a + b, (15 - a) + (15 - b))`` so every genotype lies on a line and
    the Pareto front is the whole diagonal ``a + b = constant`` sweep — more
    precisely, every point is non-dominated against points with a different
    sum, and the front of the *whole* space is every (a, b) pair.  A third
    gene adds a constraint: designs with ``flag == 1`` are infeasible.
    """

    def __init__(self) -> None:
        self.space = DesignSpace(
            [
                ParameterDomain("a", tuple(range(16))),
                ParameterDomain("b", tuple(range(16))),
                ParameterDomain("flag", (0, 1)),
            ]
        )
        self.n_objectives = 2
        self.evaluations = 0

    def evaluate(self, genotype) -> EvaluatedDesign:
        self.evaluations += 1
        values = self.space.decode(genotype)
        a, b, flag = values["a"], values["b"], values["flag"]
        feasible = flag == 0
        objectives = (float(a + b), float((15 - a) + (15 - b)))
        if not feasible:
            objectives = (objectives[0] + 100.0, objectives[1] + 100.0)
        return EvaluatedDesign(
            genotype=self.space.validate_genotype(genotype),
            objectives=objectives,
            feasible=feasible,
            phenotype=values,
        )


@pytest.fixture()
def toy_problem() -> ToyProblem:
    return ToyProblem()


def _true_front(problem: ToyProblem):
    designs = [
        problem.evaluate(genotype)
        for genotype in problem.space.enumerate_genotypes()
    ]
    feasible = [design for design in designs if design.feasible]
    objectives = [design.objectives for design in feasible]
    return [objectives[i] for i in pareto_front_indices(objectives)]


class TestExhaustiveSearch:
    def test_finds_the_exact_front(self, toy_problem):
        front = ExhaustiveSearch(toy_problem).run()
        objectives = sorted(design.objectives for design in front)
        assert objectives == sorted(_true_front(toy_problem))
        assert all(design.feasible for design in front)

    def test_warns_on_oversized_spaces_and_proceeds(self, toy_problem):
        with pytest.warns(ExhaustiveCapWarning):
            front = ExhaustiveSearch(toy_problem, max_configurations=10).run()
        objectives = sorted(design.objectives for design in front)
        assert objectives == sorted(_true_front(toy_problem))


class TestNsga2:
    def test_finds_most_of_the_true_front(self, toy_problem):
        settings = Nsga2Settings(population_size=40, generations=25, seed=1)
        front = Nsga2(toy_problem, settings).run()
        coverage = front_coverage(
            _true_front(toy_problem), [design.objectives for design in front]
        )
        assert coverage >= 0.6
        assert all(design.feasible for design in front)

    def test_is_deterministic_for_a_seed(self, toy_problem):
        settings = Nsga2Settings(population_size=20, generations=10, seed=7)
        first = Nsga2(ToyProblem(), settings).run()
        second = Nsga2(ToyProblem(), settings).run()
        assert sorted(d.genotype for d in first) == sorted(d.genotype for d in second)

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            Nsga2Settings(population_size=2)
        with pytest.raises(ValueError):
            Nsga2Settings(mutation_rate=1.5)


class TestSimulatedAnnealing:
    def test_archive_contains_only_feasible_non_dominated_designs(self, toy_problem):
        settings = SimulatedAnnealingSettings(iterations=800, seed=2)
        front = MultiObjectiveSimulatedAnnealing(toy_problem, settings).run()
        assert front
        assert all(design.feasible for design in front)
        objectives = [design.objectives for design in front]
        assert sorted(pareto_front_indices(objectives)) == list(range(len(objectives)))

    def test_covers_a_reasonable_part_of_the_front(self, toy_problem):
        settings = SimulatedAnnealingSettings(iterations=1500, seed=3)
        front = MultiObjectiveSimulatedAnnealing(toy_problem, settings).run()
        coverage = front_coverage(
            _true_front(toy_problem), [design.objectives for design in front]
        )
        assert coverage >= 0.4

    def test_settings_validation(self):
        with pytest.raises(ValueError):
            SimulatedAnnealingSettings(iterations=0)
        with pytest.raises(ValueError):
            SimulatedAnnealingSettings(cooling_rate=1.5)


class TestRandomSearchAndRunner:
    def test_random_search_front_is_non_dominated(self, toy_problem):
        front = RandomSearch(toy_problem, samples=300, seed=0).run()
        objectives = [design.objectives for design in front]
        assert sorted(pareto_front_indices(objectives)) == list(range(len(objectives)))

    def test_runner_reports_evaluation_counts(self, toy_problem):
        result = run_algorithm(RandomSearch(toy_problem, samples=100, seed=0))
        assert result.evaluations > 0
        assert result.wall_clock_s >= 0.0
        assert result.evaluations_per_second > 0
        assert len(result.objective_vectors) == len(result.front)
