"""Tests of the Pareto-dominance utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.pareto import (
    crowding_distance,
    dominates,
    front_contribution,
    front_coverage,
    hypervolume,
    non_dominated_sort,
    pareto_front_indices,
)

_points = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=10),
        st.floats(min_value=0, max_value=10),
    ),
    min_size=1,
    max_size=25,
)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1.0, 2.0), (2.0, 3.0))
        assert not dominates((2.0, 3.0), (1.0, 2.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_incomparable_points(self):
        assert not dominates((1.0, 3.0), (2.0, 1.0))
        assert not dominates((2.0, 1.0), (1.0, 3.0))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    @settings(max_examples=60, deadline=None)
    @given(points=_points)
    def test_dominance_is_antisymmetric(self, points):
        for a in points:
            for b in points:
                assert not (dominates(a, b) and dominates(b, a))


class TestFrontExtraction:
    def test_simple_front(self):
        points = [(1, 5), (2, 2), (5, 1), (4, 4), (6, 6)]
        front = pareto_front_indices(points)
        assert sorted(front) == [0, 1, 2]

    def test_duplicates_kept_once(self):
        points = [(1, 1), (1, 1), (2, 2)]
        assert pareto_front_indices(points) == [0]

    def test_non_dominated_sort_layers(self):
        points = [(1, 1), (2, 2), (3, 3)]
        fronts = non_dominated_sort(points)
        assert fronts == [[0], [1], [2]]

    @settings(max_examples=60, deadline=None)
    @given(points=_points)
    def test_front_members_are_mutually_non_dominated(self, points):
        front = pareto_front_indices(points)
        assert front, "a non-empty set always has a non-dominated point"
        for i in front:
            for j in front:
                assert not dominates(points[i], points[j]) or points[i] == points[j]

    @settings(max_examples=60, deadline=None)
    @given(points=_points)
    def test_every_dominated_point_has_a_dominator_in_the_front(self, points):
        front = set(pareto_front_indices(points))
        front_points = [points[i] for i in front]
        for index, point in enumerate(points):
            if index in front:
                continue
            assert any(
                dominates(member, point) or member == point for member in front_points
            )


class TestCrowdingDistance:
    def test_extremes_are_infinite(self):
        distances = crowding_distance([(1, 5), (2, 4), (3, 3), (4, 2), (5, 1)])
        assert distances[0] == np.inf
        assert distances[-1] == np.inf
        assert all(np.isfinite(d) for d in distances[1:-1])

    def test_empty_front(self):
        assert crowding_distance([]) == []


class TestHypervolume:
    def test_single_point_2d(self):
        assert hypervolume([(1.0, 1.0)], (3.0, 3.0)) == pytest.approx(4.0)

    def test_two_points_2d(self):
        value = hypervolume([(1.0, 2.0), (2.0, 1.0)], (3.0, 3.0))
        assert value == pytest.approx(3.0)

    def test_dominated_points_do_not_change_the_volume(self):
        base = hypervolume([(1.0, 1.0)], (3.0, 3.0))
        extended = hypervolume([(1.0, 1.0), (2.0, 2.0)], (3.0, 3.0))
        assert extended == pytest.approx(base)

    def test_points_outside_the_reference_are_ignored(self):
        assert hypervolume([(4.0, 4.0)], (3.0, 3.0)) == 0.0

    def test_three_dimensional_volume(self):
        assert hypervolume([(0.0, 0.0, 0.0)], (1.0, 1.0, 1.0)) == pytest.approx(1.0)
        # Union of the two dominated boxes: 0.5 + 0.25 minus their 0.125
        # intersection.
        value = hypervolume([(0.0, 0.5, 0.0), (0.5, 0.0, 0.5)], (1.0, 1.0, 1.0))
        assert value == pytest.approx(0.625)

    @settings(max_examples=40, deadline=None)
    @given(points=_points)
    def test_hypervolume_is_monotone_in_the_front(self, points):
        reference = (11.0, 11.0)
        subset = points[: max(1, len(points) // 2)]
        assert hypervolume(points, reference) >= hypervolume(subset, reference) - 1e-9


class TestFrontComparison:
    def test_coverage_of_identical_fronts_is_total(self):
        front = [(1.0, 2.0), (2.0, 1.0)]
        assert front_coverage(front, front) == 1.0

    def test_coverage_of_disjoint_worse_front_is_zero(self):
        reference = [(1.0, 1.0)]
        candidate = [(2.0, 2.0)]
        assert front_coverage(reference, candidate) == 0.0

    def test_contribution_counts_candidate_only_points(self):
        reference = [(1.0, 5.0), (5.0, 1.0)]
        candidate = [(0.5, 6.0)]
        contribution = front_contribution(reference, candidate)
        assert contribution == pytest.approx(1 / 3)

    def test_contribution_of_dominated_candidates_is_zero(self):
        reference = [(1.0, 1.0)]
        candidate = [(2.0, 2.0), (3.0, 3.0)]
        assert front_contribution(reference, candidate) == 0.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            front_coverage([], [(1.0, 1.0)])
        with pytest.raises(ValueError):
            front_contribution([], [])
