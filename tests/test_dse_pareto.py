"""Tests of the Pareto-dominance utilities.

The skyline kernel equivalence suite is the differential harness of the
sort-based front-extraction kernels: every randomized/adversarial input is
pruned with the skyline dispatch on and off (:func:`use_skyline`), asserting
identical membership *and* ordering against the blockwise dominance-matrix
reference — including duplicate rows, all-equal columns, NaN rows and
pre-sorted/reversed inputs.  The hypervolume and coverage suites compare the
restructured implementations against verbatim copies of the originals they
replaced, asserting exact float equality on random fronts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.pareto import (
    _points_matrix,
    crowding_distance,
    dominates,
    front_contribution,
    front_coverage,
    hypervolume,
    non_dominated_sort,
    pareto_front_indices,
    prune_kernel_counts,
    running_front_indices,
    use_skyline,
)

_points = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=10),
        st.floats(min_value=0, max_value=10),
    ),
    min_size=1,
    max_size=25,
)


class TestDominance:
    def test_strict_dominance(self):
        assert dominates((1.0, 2.0), (2.0, 3.0))
        assert not dominates((2.0, 3.0), (1.0, 2.0))

    def test_equal_points_do_not_dominate(self):
        assert not dominates((1.0, 2.0), (1.0, 2.0))

    def test_incomparable_points(self):
        assert not dominates((1.0, 3.0), (2.0, 1.0))
        assert not dominates((2.0, 1.0), (1.0, 3.0))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dominates((1.0,), (1.0, 2.0))

    @settings(max_examples=60, deadline=None)
    @given(points=_points)
    def test_dominance_is_antisymmetric(self, points):
        for a in points:
            for b in points:
                assert not (dominates(a, b) and dominates(b, a))


class TestFrontExtraction:
    def test_simple_front(self):
        points = [(1, 5), (2, 2), (5, 1), (4, 4), (6, 6)]
        front = pareto_front_indices(points)
        assert sorted(front) == [0, 1, 2]

    def test_duplicates_kept_once(self):
        points = [(1, 1), (1, 1), (2, 2)]
        assert pareto_front_indices(points) == [0]

    def test_non_dominated_sort_layers(self):
        points = [(1, 1), (2, 2), (3, 3)]
        fronts = non_dominated_sort(points)
        assert fronts == [[0], [1], [2]]

    @settings(max_examples=60, deadline=None)
    @given(points=_points)
    def test_front_members_are_mutually_non_dominated(self, points):
        front = pareto_front_indices(points)
        assert front, "a non-empty set always has a non-dominated point"
        for i in front:
            for j in front:
                assert not dominates(points[i], points[j]) or points[i] == points[j]

    @settings(max_examples=60, deadline=None)
    @given(points=_points)
    def test_every_dominated_point_has_a_dominator_in_the_front(self, points):
        front = set(pareto_front_indices(points))
        front_points = [points[i] for i in front]
        for index, point in enumerate(points):
            if index in front:
                continue
            assert any(
                dominates(member, point) or member == point for member in front_points
            )


class TestCrowdingDistance:
    def test_extremes_are_infinite(self):
        distances = crowding_distance([(1, 5), (2, 4), (3, 3), (4, 2), (5, 1)])
        assert distances[0] == np.inf
        assert distances[-1] == np.inf
        assert all(np.isfinite(d) for d in distances[1:-1])

    def test_empty_front(self):
        assert crowding_distance([]) == []


class TestHypervolume:
    def test_single_point_2d(self):
        assert hypervolume([(1.0, 1.0)], (3.0, 3.0)) == pytest.approx(4.0)

    def test_two_points_2d(self):
        value = hypervolume([(1.0, 2.0), (2.0, 1.0)], (3.0, 3.0))
        assert value == pytest.approx(3.0)

    def test_dominated_points_do_not_change_the_volume(self):
        base = hypervolume([(1.0, 1.0)], (3.0, 3.0))
        extended = hypervolume([(1.0, 1.0), (2.0, 2.0)], (3.0, 3.0))
        assert extended == pytest.approx(base)

    def test_points_outside_the_reference_are_ignored(self):
        assert hypervolume([(4.0, 4.0)], (3.0, 3.0)) == 0.0

    def test_three_dimensional_volume(self):
        assert hypervolume([(0.0, 0.0, 0.0)], (1.0, 1.0, 1.0)) == pytest.approx(1.0)
        # Union of the two dominated boxes: 0.5 + 0.25 minus their 0.125
        # intersection.
        value = hypervolume([(0.0, 0.5, 0.0), (0.5, 0.0, 0.5)], (1.0, 1.0, 1.0))
        assert value == pytest.approx(0.625)

    @settings(max_examples=40, deadline=None)
    @given(points=_points)
    def test_hypervolume_is_monotone_in_the_front(self, points):
        reference = (11.0, 11.0)
        subset = points[: max(1, len(points) // 2)]
        assert hypervolume(points, reference) >= hypervolume(subset, reference) - 1e-9


class TestFrontComparison:
    def test_coverage_of_identical_fronts_is_total(self):
        front = [(1.0, 2.0), (2.0, 1.0)]
        assert front_coverage(front, front) == 1.0

    def test_coverage_of_disjoint_worse_front_is_zero(self):
        reference = [(1.0, 1.0)]
        candidate = [(2.0, 2.0)]
        assert front_coverage(reference, candidate) == 0.0

    def test_contribution_counts_candidate_only_points(self):
        reference = [(1.0, 5.0), (5.0, 1.0)]
        candidate = [(0.5, 6.0)]
        contribution = front_contribution(reference, candidate)
        assert contribution == pytest.approx(1 / 3)

    def test_contribution_of_dominated_candidates_is_zero(self):
        reference = [(1.0, 1.0)]
        candidate = [(2.0, 2.0), (3.0, 3.0)]
        assert front_contribution(reference, candidate) == 0.0

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            front_coverage([], [(1.0, 1.0)])
        with pytest.raises(ValueError):
            front_contribution([], [])

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            front_coverage([(1.0, 1.0)], [(1.0, 1.0, 1.0)])
        with pytest.raises(ValueError):
            front_coverage([(1.0, 1.0), (1.0,)], [(1.0, 1.0)])


def _both_kernels(points) -> tuple[list[int], list[int]]:
    """Front indices with the skyline dispatch on and off."""
    with use_skyline(True):
        skyline = pareto_front_indices(points)
    with use_skyline(False):
        blockwise = pareto_front_indices(points)
    return skyline, blockwise


#: Sizes straddling every dispatch boundary: the trivial cases, the k-D
#: blockwise small-n region (<= 128), the divide-and-conquer region, and the
#: blockwise hierarchical threshold (2 * 512).
_SKYLINE_SIZES = (0, 1, 2, 3, 5, 17, 64, 129, 500, 1333, 5000)


class TestSkylineKernelEquivalence:
    """Sort-based kernels vs the blockwise reference: same mask, bit for bit."""

    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    @pytest.mark.parametrize("count", _SKYLINE_SIZES)
    def test_random_points_agree(self, count, width):
        rng = np.random.default_rng(97 * count + width)
        points = rng.random((count, width)) * 10.0
        if count >= 4:
            # Inject exact duplicates (first occurrence must survive).
            points[count // 2] = points[0]
            points[-1] = points[1]
        skyline, blockwise = _both_kernels(points)
        assert skyline == blockwise, (count, width)

    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    @pytest.mark.parametrize("count", _SKYLINE_SIZES)
    def test_low_cardinality_duplicates_agree(self, count, width):
        """Integer grids maximise duplicate and tied-component cases."""
        rng = np.random.default_rng(31 * count + width)
        points = rng.integers(0, 3, size=(count, width)).astype(float)
        skyline, blockwise = _both_kernels(points)
        assert skyline == blockwise, (count, width)

    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_all_equal_columns_agree(self, width):
        rng = np.random.default_rng(width)
        points = rng.random((700, width)) * 5.0
        points[:, 1] = 2.5  # one constant objective: massive tie surface
        skyline, blockwise = _both_kernels(points)
        assert skyline == blockwise
        constant = np.full((300, width), 1.25)
        skyline, blockwise = _both_kernels(constant)
        assert skyline == blockwise == [0]

    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    def test_nan_rows_survive_and_never_eliminate(self, width):
        """NaN rows are inert: permanent survivors that beat nothing."""
        rng = np.random.default_rng(5 + width)
        points = rng.random((400, width)) * 10.0
        nan_rows = rng.choice(400, size=25, replace=False)
        for row in nan_rows:
            points[row, rng.integers(0, width)] = np.nan
        skyline, blockwise = _both_kernels(points)
        assert skyline == blockwise
        assert set(nan_rows).issubset(skyline)
        # Identical NaN rows are not duplicates of each other (NaN != NaN,
        # the same convention as the pairwise `dominates` equality check).
        twins = np.asarray([[np.nan] * width, [np.nan] * width, [0.5] * width])
        skyline, blockwise = _both_kernels(twins)
        assert skyline == blockwise == [0, 1, 2]

    @pytest.mark.parametrize("width", [2, 3, 4])
    @pytest.mark.parametrize("order", ["sorted", "reversed"])
    def test_adversarial_presorted_inputs_agree(self, width, order):
        """Pre-sorted and reverse-sorted inputs hit the recursion's worst
        splits (every cross-filter is one-sided)."""
        rng = np.random.default_rng(11 * width)
        points = rng.random((1500, width)) * 10.0
        keys = tuple(points[:, column] for column in range(width - 1, -1, -1))
        points = points[np.lexsort(keys)]
        if order == "reversed":
            points = points[::-1].copy()
        skyline, blockwise = _both_kernels(points)
        assert skyline == blockwise

    @pytest.mark.parametrize("width", [2, 3])
    def test_running_front_updates_agree(self, width):
        """Chunked archive updates are toggle-invariant too."""
        rng = np.random.default_rng(23 + width)
        chunks = [rng.random((600, width)) * 10.0 for _ in range(4)]

        def sweep() -> list[np.ndarray]:
            archive = np.empty((0, width))
            fronts = []
            for chunk in chunks:
                indices = running_front_indices(archive, chunk)
                archive = np.concatenate([archive, chunk], axis=0)[indices]
                fronts.append(archive.copy())
            return fronts

        with use_skyline(True):
            fast = sweep()
        with use_skyline(False):
            slow = sweep()
        for fast_front, slow_front in zip(fast, slow):
            assert np.array_equal(fast_front, slow_front)

    def test_dispatch_counters_track_the_kernel_families(self):
        before = prune_kernel_counts()
        rng = np.random.default_rng(0)
        with use_skyline(True):
            pareto_front_indices(rng.random((50, 1)))
            pareto_front_indices(rng.random((50, 2)))
            pareto_front_indices(rng.random((200, 3)))
            pareto_front_indices(rng.random((50, 3)))  # small k-D: blockwise
        with use_skyline(False):
            pareto_front_indices(rng.random((50, 2)))
        after = prune_kernel_counts()
        assert after["skyline_1d"] == before["skyline_1d"] + 1
        assert after["skyline_2d"] == before["skyline_2d"] + 1
        assert after["skyline_kd"] == before["skyline_kd"] + 1
        assert after["blockwise"] == before["blockwise"] + 2

    @settings(max_examples=60, deadline=None)
    @given(points=_points)
    def test_hypothesis_points_agree(self, points):
        skyline, blockwise = _both_kernels(points)
        assert skyline == blockwise


def _reference_hypervolume(objectives, reference) -> float:
    """Verbatim copy of the slice-by-slice recursion the staircase replaced:
    the exact-equality reference of ``TestHypervolumeEquality``."""
    if len(objectives) == 0:
        return 0.0
    points = _points_matrix(objectives)
    reference_point = np.asarray(reference, dtype=float)
    dimension = len(reference_point)
    if points.shape[1] != dimension:
        raise ValueError("points and reference must have the same dimension")
    points = points[(points < reference_point).all(axis=1)]
    if len(points) == 0:
        return 0.0
    front = points[pareto_front_indices(points)]
    if dimension == 1:
        return float(reference_point[0] - front[:, 0].min())
    front = front[np.argsort(front[:, -1], kind="stable")]
    volume = 0.0
    previous_last = reference_point[-1]
    for index in range(len(front) - 1, -1, -1):
        point = front[index]
        slab_height = previous_last - point[-1]
        if slab_height > 0:
            volume += slab_height * _reference_hypervolume(
                front[: index + 1, :-1], reference_point[:-1]
            )
            previous_last = point[-1]
    return float(volume)


class TestHypervolumeEquality:
    """The staircase fast path equals the recursion it replaced, exactly."""

    @pytest.mark.parametrize("width", [1, 2, 3, 4])
    @pytest.mark.parametrize("seed", range(6))
    def test_random_fronts_match_exactly(self, width, seed):
        rng = np.random.default_rng(1000 * width + seed)
        count = int(rng.integers(1, 40))
        points = (rng.random((count, width)) * 3.0).round(3)
        reference = np.full(width, 2.5)
        assert hypervolume(points, reference) == _reference_hypervolume(
            points, reference
        )

    @pytest.mark.parametrize("width", [2, 3])
    def test_duplicate_and_boundary_points_match_exactly(self, width):
        rng = np.random.default_rng(width)
        points = rng.integers(0, 4, size=(30, width)).astype(float)
        reference = np.full(width, 3.0)  # some points sit on the boundary
        assert hypervolume(points, reference) == _reference_hypervolume(
            points, reference
        )


def _reference_front_coverage(
    reference_front, candidate_front, relative_tolerance=1e-3
) -> float:
    """Verbatim copy of the per-pair loops vectorized ``front_coverage``
    replaced: the bit-for-bit reference of ``TestFrontCoverageVectorized``."""
    reference = [tuple(float(v) for v in point) for point in reference_front]
    candidates = [tuple(float(v) for v in point) for point in candidate_front]
    if not reference:
        raise ValueError("the reference front must not be empty")
    if not candidates:
        return 0.0

    def recovered(point) -> bool:
        for candidate in candidates:
            if len(candidate) != len(point):
                raise ValueError("fronts must share the objective dimension")
            close = all(
                abs(c - p) <= relative_tolerance * max(abs(p), 1e-12)
                for c, p in zip(candidate, point)
            )
            if close or dominates(candidate, point):
                return True
        return False

    found = sum(1 for point in reference if recovered(point))
    return found / len(reference)


class TestFrontCoverageVectorized:
    """The broadcasted coverage equals the per-pair loops it replaced."""

    @pytest.mark.parametrize("width", [1, 2, 3])
    @pytest.mark.parametrize("seed", range(5))
    def test_random_fronts_match_exactly(self, width, seed):
        rng = np.random.default_rng(100 * width + seed)
        reference = (rng.random((12, width)) * 4.0).round(2)
        candidates = (rng.random((15, width)) * 4.0).round(2)
        assert front_coverage(reference, candidates) == _reference_front_coverage(
            reference, candidates
        )

    def test_tolerance_semantics_match_exactly(self):
        # Candidates exactly on, just inside and just outside the relative
        # tolerance band — the boundary comparisons must not drift.
        reference = [(1.0, 2.0), (0.0, 3.0), (4.0, 0.0)]
        tolerance = 1e-3
        candidates = [
            (1.0 * (1 + tolerance), 2.0),
            (0.0, 3.0 * (1 + 2 * tolerance)),
            (4.0 + 5e-13, 0.0),
        ]
        assert front_coverage(
            reference, candidates, tolerance
        ) == _reference_front_coverage(reference, candidates, tolerance)

    @settings(max_examples=40, deadline=None)
    @given(reference=_points, candidates=_points)
    def test_hypothesis_fronts_match_exactly(self, reference, candidates):
        assert front_coverage(reference, candidates) == _reference_front_coverage(
            reference, candidates
        )
