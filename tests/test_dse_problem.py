"""Tests of the WBSN exploration problem."""

from __future__ import annotations

import pytest

from repro.dse.problem import WbsnDseProblem
from repro.experiments.casestudy import build_baseline_evaluator, build_case_study_evaluator
from repro.mac802154.config import Ieee802154MacConfig
from repro.shimmer.platform import ShimmerNodeConfig


@pytest.fixture(scope="module")
def small_problem() -> WbsnDseProblem:
    evaluator = build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
    return WbsnDseProblem(evaluator, record_evaluations=True)


class TestWbsnDseProblem:
    def test_space_structure(self, small_problem):
        # Two genes per node plus payload and orders.
        assert len(small_problem.space) == 2 * 2 + 2
        assert small_problem.n_objectives == 3
        assert small_problem.space.size > 1000

    def test_decode_produces_configuration_objects(self, small_problem):
        genotype = tuple(0 for _ in range(len(small_problem.space)))
        node_configs, mac_config = small_problem.decode(genotype)
        assert len(node_configs) == 2
        assert isinstance(node_configs[0], ShimmerNodeConfig)
        assert isinstance(mac_config, Ieee802154MacConfig)
        assert node_configs[0].compression_ratio == pytest.approx(0.17)

    def test_evaluation_counts_and_history(self, small_problem):
        before = small_problem.evaluations
        genotype = tuple(0 for _ in range(len(small_problem.space)))
        design = small_problem.evaluate(genotype)
        assert small_problem.evaluations == before + 1
        assert small_problem.history[-1] is design
        assert len(design.objectives) == 3

    def test_infeasible_designs_are_penalised(self, small_problem):
        # Node 0 runs the DWT: 1 MHz (index 0 of the frequency domain) makes
        # it unschedulable.
        slow = [0, 0, 0, 3, 0, 0]
        fast = [0, 3, 0, 3, 0, 0]
        slow_design = small_problem.evaluate(slow)
        fast_design = small_problem.evaluate(fast)
        assert not slow_design.feasible
        assert fast_design.feasible
        assert slow_design.objectives[0] > fast_design.objectives[0] + 100

    def test_baseline_problem_has_two_objectives(self):
        problem = WbsnDseProblem(build_baseline_evaluator(n_nodes=2))
        assert problem.n_objectives == 2
        design = problem.evaluate(tuple(0 for _ in range(len(problem.space))))
        assert len(design.objectives) == 2
