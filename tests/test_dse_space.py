"""Tests of the design-space encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.space import DesignSpace, ParameterDomain


def _space() -> DesignSpace:
    return DesignSpace(
        [
            ParameterDomain("cr", (0.2, 0.3, 0.4)),
            ParameterDomain("freq", (1e6, 8e6)),
            ParameterDomain("payload", (40, 80, 100, 114)),
        ]
    )


class TestParameterDomain:
    def test_value_lookup(self):
        domain = ParameterDomain("cr", (0.2, 0.3))
        assert domain.cardinality == 2
        assert domain.value_at(1) == 0.3

    def test_out_of_range_index_rejected(self):
        with pytest.raises(IndexError):
            ParameterDomain("cr", (0.2,)).value_at(1)

    def test_empty_domain_rejected(self):
        with pytest.raises(ValueError):
            ParameterDomain("cr", ())


class TestDesignSpace:
    def test_size_is_the_product_of_cardinalities(self):
        assert _space().size == 3 * 2 * 4

    def test_decode(self):
        decoded = _space().decode((2, 1, 0))
        assert decoded == {"cr": 0.4, "freq": 8e6, "payload": 40}

    def test_invalid_genotypes_rejected(self):
        space = _space()
        with pytest.raises(ValueError):
            space.validate_genotype((0, 0))
        with pytest.raises(ValueError):
            space.validate_genotype((0, 5, 0))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            DesignSpace([ParameterDomain("a", (1,)), ParameterDomain("a", (2,))])

    def test_enumeration_covers_the_whole_space(self):
        space = _space()
        genotypes = list(space.enumerate_genotypes())
        assert len(genotypes) == space.size
        assert len(set(genotypes)) == space.size

    def test_random_genotype_is_valid(self):
        space = _space()
        rng = np.random.default_rng(0)
        for _ in range(50):
            genotype = space.random_genotype(rng)
            space.validate_genotype(genotype)

    def test_mutation_respects_domains(self):
        space = _space()
        rng = np.random.default_rng(0)
        genotype = (0, 0, 0)
        for _ in range(50):
            genotype = space.mutate_genotype(genotype, rng, mutation_rate=0.5)
            space.validate_genotype(genotype)

    def test_zero_mutation_rate_is_identity(self):
        space = _space()
        rng = np.random.default_rng(0)
        assert space.mutate_genotype((1, 1, 2), rng, 0.0) == (1, 1, 2)

    @settings(max_examples=30, deadline=None)
    @given(
        cardinalities=st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=6),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_random_genotypes_always_decode(self, cardinalities, seed):
        domains = [
            ParameterDomain(f"p{i}", tuple(range(size)))
            for i, size in enumerate(cardinalities)
        ]
        space = DesignSpace(domains)
        rng = np.random.default_rng(seed)
        genotype = space.random_genotype(rng)
        decoded = space.decode(genotype)
        assert len(decoded) == len(cardinalities)
