"""Tests of the shared evaluation engine: caches, batching, backends, stats."""

from __future__ import annotations

import pytest

from repro.dse.exhaustive import ExhaustiveSearch
from repro.dse.nsga2 import Nsga2, Nsga2Settings
from repro.dse.problem import WbsnDseProblem
from repro.dse.random_search import RandomSearch
from repro.dse.runner import run_algorithm
from repro.dse.simulated_annealing import (
    MultiObjectiveSimulatedAnnealing,
    SimulatedAnnealingSettings,
)
from repro.engine import CachedNetworkEvaluator, EngineStats, EvaluationEngine
from repro.experiments.casestudy import build_case_study_evaluator

#: Restricted knob domains giving a 64-configuration space (2 nodes), small
#: enough for exhaustive sweeps in cached and uncached flavours.
SMALL_DOMAINS = dict(
    compression_ratios=(0.2, 0.3),
    frequencies_hz=(4e6, 8e6),
    payload_bytes=(60, 80),
    order_pairs=((4, 4), (4, 6)),
)


def small_problem(**kwargs) -> WbsnDseProblem:
    evaluator = build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
    return WbsnDseProblem(evaluator, **SMALL_DOMAINS, **kwargs)


def front_signature(front):
    return sorted((design.genotype, design.objectives) for design in front)


class TestEngineStats:
    def test_snapshot_is_independent(self):
        stats = EngineStats(genotype_requests=3, node_model_calls=2)
        snap = stats.snapshot()
        stats.genotype_requests += 5
        assert snap.genotype_requests == 3
        assert stats.genotype_requests == 8

    def test_difference_and_merge(self):
        before = EngineStats(genotype_requests=10, node_cache_hits=4)
        after = EngineStats(genotype_requests=25, node_cache_hits=9)
        delta = after - before
        assert delta.genotype_requests == 15
        assert delta.node_cache_hits == 5
        before.merge(delta)
        assert before.genotype_requests == 25
        assert before.node_cache_hits == 9

    def test_hit_rates_guard_division_by_zero(self):
        stats = EngineStats()
        assert stats.genotype_cache_hit_rate == 0.0
        assert stats.node_cache_hit_rate == 0.0
        stats.genotype_requests = 4
        stats.genotype_cache_hits = 1
        stats.node_stage_requests = 10
        stats.node_cache_hits = 5
        assert stats.genotype_cache_hit_rate == pytest.approx(0.25)
        assert stats.node_cache_hit_rate == pytest.approx(0.5)


class TestCachedNetworkEvaluator:
    def test_matches_the_raw_evaluator(self):
        raw = build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
        cached = CachedNetworkEvaluator(raw)
        problem = small_problem()
        for genotype in list(problem.space.enumerate_genotypes())[:8]:
            node_configs, mac_config = problem.decode(genotype)
            reference = raw.evaluate(node_configs, mac_config)
            twice = [cached.evaluate(node_configs, mac_config) for _ in range(2)]
            for evaluation in twice:
                assert evaluation.objectives == reference.objectives
                assert evaluation.feasible == reference.feasible
                assert evaluation.violations == reference.violations

    def test_counts_hits_and_model_calls(self):
        raw = build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
        cached = CachedNetworkEvaluator(raw)
        problem = small_problem()
        node_configs, mac_config = problem.decode((0, 0, 0, 0, 0, 0))
        cached.evaluate(node_configs, mac_config)
        assert cached.stats.node_model_calls == 2
        assert cached.stats.node_cache_hits == 0
        cached.evaluate(node_configs, mac_config)
        assert cached.stats.node_model_calls == 2
        assert cached.stats.node_cache_hits == 2
        assert cached.cache_size == 2

    def test_disabled_mode_still_counts_model_calls(self):
        raw = build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
        cached = CachedNetworkEvaluator(raw, enabled=False)
        problem = small_problem()
        node_configs, mac_config = problem.decode((0, 0, 0, 0, 0, 0))
        cached.evaluate(node_configs, mac_config)
        cached.evaluate(node_configs, mac_config)
        assert cached.stats.node_model_calls == 4
        assert cached.stats.node_cache_hits == 0
        assert cached.cache_size == 0


class TestEvaluationEngine:
    def test_genotype_memoisation(self):
        problem = small_problem()
        genotype = (1, 1, 0, 0, 1, 1)
        first = problem.engine.evaluate(genotype)
        hits_before = problem.engine.stats.genotype_cache_hits
        second = problem.engine.evaluate(genotype)
        assert second is first
        assert problem.engine.stats.genotype_cache_hits == hits_before + 1

    def test_evaluate_many_preserves_order_and_dedupes(self):
        problem = small_problem()
        genotypes = [(0, 0, 0, 0, 0, 0), (1, 1, 1, 1, 1, 1), (0, 0, 0, 0, 0, 0)]
        stats_before = problem.engine.stats.snapshot()
        designs = problem.engine.evaluate_many(genotypes)
        delta = problem.engine.stats.snapshot() - stats_before
        assert [design.genotype for design in designs] == genotypes
        assert designs[0] is designs[2]
        # The probe already cached genotype 0: 1 stored hit + 1 duplicate hit.
        assert delta.genotype_requests == 3
        assert delta.genotype_cache_hits == 2
        assert delta.model_evaluations == 1

    def test_disabled_genotype_cache_recomputes(self):
        problem = small_problem(
            engine=EvaluationEngine(genotype_cache=False, node_cache=False)
        )
        genotype = (0, 0, 0, 0, 0, 0)
        stats_before = problem.engine.stats.snapshot()
        problem.engine.evaluate(genotype)
        problem.engine.evaluate(genotype)
        delta = problem.engine.stats.snapshot() - stats_before
        assert delta.model_evaluations == 2
        assert delta.genotype_cache_hits == 0

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError):
            EvaluationEngine(backend="gpu")

    def test_engine_cannot_be_rebound(self):
        problem = small_problem()
        with pytest.raises(RuntimeError):
            problem.engine.bind(small_problem())

    def test_process_backend_matches_serial(self):
        serial = small_problem()
        process = small_problem(
            engine=EvaluationEngine(backend="process", max_workers=2, chunk_size=8)
        )
        genotypes = list(serial.space.enumerate_genotypes())[:24]
        try:
            parallel_designs = process.evaluate_batch(genotypes)
        finally:
            process.engine.close()
        serial_designs = serial.evaluate_batch(genotypes)
        assert [d.objectives for d in parallel_designs] == [
            d.objectives for d in serial_designs
        ]
        assert [d.feasible for d in parallel_designs] == [
            d.feasible for d in serial_designs
        ]
        # Worker node-stage counters travel back with each chunk.
        assert process.engine.stats.node_model_calls > 0


class TestProblemAccounting:
    def test_probe_does_not_skew_history_or_evaluations(self):
        problem = small_problem(record_evaluations=True)
        assert problem.evaluations == 0
        assert problem.history == []
        # ... but the probe did warm the caches and was counted as model work.
        assert problem.engine.stats.model_evaluations == 1
        assert problem.engine.genotype_cache_size == 1

    def test_evaluate_and_batch_record_everything(self):
        problem = small_problem(record_evaluations=True)
        problem.evaluate((0, 0, 0, 0, 0, 0))
        problem.evaluate_batch([(0, 0, 0, 0, 0, 0), (1, 0, 1, 0, 1, 0)])
        assert problem.evaluations == 3
        assert len(problem.history) == 3

    def test_first_class_counters_exist_on_problems(self):
        problem = small_problem()
        assert problem.engine is not None
        assert problem.evaluations == 0


class TestCacheCorrectness:
    """Caching must never change results: same seed, same fronts, bitwise."""

    def _cached_and_uncached(self, **kwargs):
        cached = small_problem(**kwargs)
        uncached = small_problem(
            engine=EvaluationEngine(genotype_cache=False, node_cache=False), **kwargs
        )
        return cached, uncached

    def test_exhaustive_identical(self):
        cached, uncached = self._cached_and_uncached()
        assert front_signature(ExhaustiveSearch(cached).run()) == front_signature(
            ExhaustiveSearch(uncached).run()
        )

    def test_random_search_identical(self):
        cached, uncached = self._cached_and_uncached()
        assert front_signature(
            RandomSearch(cached, samples=120, seed=4).run()
        ) == front_signature(RandomSearch(uncached, samples=120, seed=4).run())

    def test_nsga2_identical(self):
        cached, uncached = self._cached_and_uncached()
        settings = Nsga2Settings(population_size=16, generations=6, seed=9)
        assert front_signature(Nsga2(cached, settings).run()) == front_signature(
            Nsga2(uncached, settings).run()
        )

    def test_simulated_annealing_identical(self):
        cached, uncached = self._cached_and_uncached()
        settings = SimulatedAnnealingSettings(iterations=250, seed=5)
        assert front_signature(
            MultiObjectiveSimulatedAnnealing(cached, settings).run()
        ) == front_signature(
            MultiObjectiveSimulatedAnnealing(uncached, settings).run()
        )

    def test_speculative_annealing_batches_share_the_engine(self):
        problem = small_problem()
        settings = SimulatedAnnealingSettings(iterations=200, seed=5, batch_size=8)
        front = MultiObjectiveSimulatedAnnealing(problem, settings).run()
        assert front
        assert all(design.feasible for design in front)


class TestFigure5ProblemCaching:
    def test_node_cache_hit_rate_on_the_case_study(self):
        """Figure-5 problem: per-node results repeat massively across designs.

        The node cache only fields requests on the scalar path, so this test
        pins ``vectorized=False`` (the columnar path never touches per-node
        stages).
        """
        problem = WbsnDseProblem(
            build_case_study_evaluator(theta=0.5), vectorized=False
        )
        result = run_algorithm(
            Nsga2(problem, Nsga2Settings(population_size=24, generations=8, seed=3))
        )
        stats = result.engine_stats
        assert stats is not None
        assert stats.node_cache_hit_rate > 0.3
        assert stats.model_evaluations < result.evaluations or (
            stats.genotype_cache_hit_rate == 0.0
        )
        # Fewer raw per-node model calls than stage requests: the node cache
        # is doing real work on the case-study space.
        assert stats.node_model_calls < stats.node_stage_requests

    def test_runner_reports_cache_aware_throughput(self):
        problem = WbsnDseProblem(build_case_study_evaluator(theta=0.5))
        result = run_algorithm(
            Nsga2(problem, Nsga2Settings(population_size=16, generations=4, seed=0))
        )
        assert result.evaluations > 0
        assert result.model_evaluations <= result.evaluations
        assert result.evaluations_per_second >= result.model_evaluations_per_second
        assert 0.0 <= result.genotype_cache_hit_rate <= 1.0
        assert 0.0 <= result.node_cache_hit_rate <= 1.0
