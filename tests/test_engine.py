"""Tests of the shared evaluation engine: caches, batching, backends, stats."""

from __future__ import annotations

import pytest

from repro.dse.exhaustive import ExhaustiveSearch
from repro.dse.nsga2 import Nsga2, Nsga2Settings
from repro.dse.problem import WbsnDseProblem
from repro.dse.random_search import RandomSearch
from repro.dse.runner import run_algorithm
from repro.dse.simulated_annealing import (
    MultiObjectiveSimulatedAnnealing,
    SimulatedAnnealingSettings,
)
from repro.engine import (
    CachedNetworkEvaluator,
    EngineStats,
    EvaluationEngine,
    SharedGenotypeCache,
)
from repro.experiments.casestudy import (
    build_baseline_evaluator,
    build_case_study_evaluator,
    build_csma_case_study_evaluator,
)

#: Restricted knob domains giving a 64-configuration space (2 nodes), small
#: enough for exhaustive sweeps in cached and uncached flavours.
SMALL_DOMAINS = dict(
    compression_ratios=(0.2, 0.3),
    frequencies_hz=(4e6, 8e6),
    payload_bytes=(60, 80),
    order_pairs=((4, 4), (4, 6)),
)


def small_problem(**kwargs) -> WbsnDseProblem:
    evaluator = build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
    return WbsnDseProblem(evaluator, **SMALL_DOMAINS, **kwargs)


def front_signature(front):
    return sorted((design.genotype, design.objectives) for design in front)


class TestEngineStats:
    def test_snapshot_is_independent(self):
        stats = EngineStats(genotype_requests=3, node_model_calls=2)
        snap = stats.snapshot()
        stats.genotype_requests += 5
        assert snap.genotype_requests == 3
        assert stats.genotype_requests == 8

    def test_difference_and_merge(self):
        before = EngineStats(genotype_requests=10, node_cache_hits=4)
        after = EngineStats(genotype_requests=25, node_cache_hits=9)
        delta = after - before
        assert delta.genotype_requests == 15
        assert delta.node_cache_hits == 5
        before.merge(delta)
        assert before.genotype_requests == 25
        assert before.node_cache_hits == 9

    def test_hit_rates_guard_division_by_zero(self):
        stats = EngineStats()
        assert stats.genotype_cache_hit_rate == 0.0
        assert stats.node_cache_hit_rate == 0.0
        stats.genotype_requests = 4
        stats.genotype_cache_hits = 1
        stats.node_stage_requests = 10
        stats.node_cache_hits = 5
        assert stats.genotype_cache_hit_rate == pytest.approx(0.25)
        assert stats.node_cache_hit_rate == pytest.approx(0.5)


class TestCachedNetworkEvaluator:
    def test_matches_the_raw_evaluator(self):
        raw = build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
        cached = CachedNetworkEvaluator(raw)
        problem = small_problem()
        for genotype in list(problem.space.enumerate_genotypes())[:8]:
            node_configs, mac_config = problem.decode(genotype)
            reference = raw.evaluate(node_configs, mac_config)
            twice = [cached.evaluate(node_configs, mac_config) for _ in range(2)]
            for evaluation in twice:
                assert evaluation.objectives == reference.objectives
                assert evaluation.feasible == reference.feasible
                assert evaluation.violations == reference.violations

    def test_counts_hits_and_model_calls(self):
        raw = build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
        cached = CachedNetworkEvaluator(raw)
        problem = small_problem()
        node_configs, mac_config = problem.decode((0, 0, 0, 0, 0, 0))
        cached.evaluate(node_configs, mac_config)
        assert cached.stats.node_model_calls == 2
        assert cached.stats.node_cache_hits == 0
        cached.evaluate(node_configs, mac_config)
        assert cached.stats.node_model_calls == 2
        assert cached.stats.node_cache_hits == 2
        assert cached.cache_size == 2

    def test_disabled_mode_still_counts_model_calls(self):
        raw = build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
        cached = CachedNetworkEvaluator(raw, enabled=False)
        problem = small_problem()
        node_configs, mac_config = problem.decode((0, 0, 0, 0, 0, 0))
        cached.evaluate(node_configs, mac_config)
        cached.evaluate(node_configs, mac_config)
        assert cached.stats.node_model_calls == 4
        assert cached.stats.node_cache_hits == 0
        assert cached.cache_size == 0


class TestEvaluationEngine:
    def test_genotype_memoisation(self):
        problem = small_problem()
        genotype = (1, 1, 0, 0, 1, 1)
        first = problem.engine.evaluate(genotype)
        hits_before = problem.engine.stats.genotype_cache_hits
        second = problem.engine.evaluate(genotype)
        assert second is first
        assert problem.engine.stats.genotype_cache_hits == hits_before + 1

    def test_evaluate_many_preserves_order_and_dedupes(self):
        problem = small_problem()
        genotypes = [(0, 0, 0, 0, 0, 0), (1, 1, 1, 1, 1, 1), (0, 0, 0, 0, 0, 0)]
        stats_before = problem.engine.stats.snapshot()
        designs = problem.engine.evaluate_many(genotypes)
        delta = problem.engine.stats.snapshot() - stats_before
        assert [design.genotype for design in designs] == genotypes
        assert designs[0] is designs[2]
        # The probe already cached genotype 0: 1 stored hit + 1 duplicate hit.
        assert delta.genotype_requests == 3
        assert delta.genotype_cache_hits == 2
        assert delta.model_evaluations == 1

    def test_disabled_genotype_cache_recomputes(self):
        problem = small_problem(
            engine=EvaluationEngine(genotype_cache=False, node_cache=False)
        )
        genotype = (0, 0, 0, 0, 0, 0)
        stats_before = problem.engine.stats.snapshot()
        problem.engine.evaluate(genotype)
        problem.engine.evaluate(genotype)
        delta = problem.engine.stats.snapshot() - stats_before
        assert delta.model_evaluations == 2
        assert delta.genotype_cache_hits == 0

    def test_unknown_backend_is_rejected(self):
        with pytest.raises(ValueError):
            EvaluationEngine(backend="gpu")

    def test_engine_cannot_be_rebound(self):
        problem = small_problem()
        with pytest.raises(RuntimeError):
            problem.engine.bind(small_problem())

    def test_process_backend_matches_serial(self):
        serial = small_problem()
        process = small_problem(
            engine=EvaluationEngine(backend="process", max_workers=2, chunk_size=8)
        )
        genotypes = list(serial.space.enumerate_genotypes())[:24]
        try:
            parallel_designs = process.evaluate_batch(genotypes)
        finally:
            process.engine.close()
        serial_designs = serial.evaluate_batch(genotypes)
        assert [d.objectives for d in parallel_designs] == [
            d.objectives for d in serial_designs
        ]
        assert [d.feasible for d in parallel_designs] == [
            d.feasible for d in serial_designs
        ]
        # Worker node-stage counters travel back with each chunk.
        assert process.engine.stats.node_model_calls > 0


class TestProblemAccounting:
    def test_probe_does_not_skew_history_or_evaluations(self):
        problem = small_problem(record_evaluations=True)
        assert problem.evaluations == 0
        assert problem.history == []
        # ... but the probe did warm the caches and was counted as model work.
        assert problem.engine.stats.model_evaluations == 1
        assert problem.engine.genotype_cache_size == 1

    def test_evaluate_and_batch_record_everything(self):
        problem = small_problem(record_evaluations=True)
        problem.evaluate((0, 0, 0, 0, 0, 0))
        problem.evaluate_batch([(0, 0, 0, 0, 0, 0), (1, 0, 1, 0, 1, 0)])
        assert problem.evaluations == 3
        assert len(problem.history) == 3

    def test_first_class_counters_exist_on_problems(self):
        problem = small_problem()
        assert problem.engine is not None
        assert problem.evaluations == 0


class TestCacheCorrectness:
    """Caching must never change results: same seed, same fronts, bitwise."""

    def _cached_and_uncached(self, **kwargs):
        cached = small_problem(**kwargs)
        uncached = small_problem(
            engine=EvaluationEngine(genotype_cache=False, node_cache=False), **kwargs
        )
        return cached, uncached

    def test_exhaustive_identical(self):
        cached, uncached = self._cached_and_uncached()
        assert front_signature(ExhaustiveSearch(cached).run()) == front_signature(
            ExhaustiveSearch(uncached).run()
        )

    def test_random_search_identical(self):
        cached, uncached = self._cached_and_uncached()
        assert front_signature(
            RandomSearch(cached, samples=120, seed=4).run()
        ) == front_signature(RandomSearch(uncached, samples=120, seed=4).run())

    def test_nsga2_identical(self):
        cached, uncached = self._cached_and_uncached()
        settings = Nsga2Settings(population_size=16, generations=6, seed=9)
        assert front_signature(Nsga2(cached, settings).run()) == front_signature(
            Nsga2(uncached, settings).run()
        )

    def test_simulated_annealing_identical(self):
        cached, uncached = self._cached_and_uncached()
        settings = SimulatedAnnealingSettings(iterations=250, seed=5)
        assert front_signature(
            MultiObjectiveSimulatedAnnealing(cached, settings).run()
        ) == front_signature(
            MultiObjectiveSimulatedAnnealing(uncached, settings).run()
        )

    def test_speculative_annealing_batches_share_the_engine(self):
        problem = small_problem()
        settings = SimulatedAnnealingSettings(iterations=200, seed=5, batch_size=8)
        front = MultiObjectiveSimulatedAnnealing(problem, settings).run()
        assert front
        assert all(design.feasible for design in front)


class TestFigure5ProblemCaching:
    def test_node_cache_hit_rate_on_the_case_study(self):
        """Figure-5 problem: per-node results repeat massively across designs.

        The node cache only fields requests on the scalar path, so this test
        pins ``vectorized=False`` (the columnar path never touches per-node
        stages).
        """
        problem = WbsnDseProblem(
            build_case_study_evaluator(theta=0.5), vectorized=False
        )
        result = run_algorithm(
            Nsga2(problem, Nsga2Settings(population_size=24, generations=8, seed=3))
        )
        stats = result.engine_stats
        assert stats is not None
        assert stats.node_cache_hit_rate > 0.3
        assert stats.model_evaluations < result.evaluations or (
            stats.genotype_cache_hit_rate == 0.0
        )
        # Fewer raw per-node model calls than stage requests: the node cache
        # is doing real work on the case-study space.
        assert stats.node_model_calls < stats.node_stage_requests

    def test_runner_reports_cache_aware_throughput(self):
        problem = WbsnDseProblem(build_case_study_evaluator(theta=0.5))
        result = run_algorithm(
            Nsga2(problem, Nsga2Settings(population_size=16, generations=4, seed=0))
        )
        assert result.evaluations > 0
        assert result.model_evaluations <= result.evaluations
        assert result.evaluations_per_second >= result.model_evaluations_per_second
        assert 0.0 <= result.genotype_cache_hit_rate <= 1.0
        assert 0.0 <= result.node_cache_hit_rate <= 1.0


class TestSharedGenotypeCache:
    """Cross-problem reuse: one shared cache across the Figure-5 pair."""

    SMALL = dict(
        compression_ratios=(0.2, 0.3),
        frequencies_hz=(4e6, 8e6),
        payload_bytes=(60, 80),
        order_pairs=((4, 4), (4, 6)),
    )

    def _pair(self, shared):
        full = WbsnDseProblem(
            build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
            **self.SMALL,
            engine=EvaluationEngine(shared_cache=shared),
        )
        baseline = WbsnDseProblem(
            build_baseline_evaluator(n_nodes=2),
            **self.SMALL,
            engine=EvaluationEngine(shared_cache=shared),
        )
        return full, baseline

    def test_shared_hits_attributed_to_the_consuming_engine(self):
        shared = SharedGenotypeCache()
        full, baseline = self._pair(shared)
        genotypes = list(full.space.enumerate_genotypes())[:32]
        full.evaluate_batch(genotypes)
        publisher_stats = full.engine.stats.snapshot()
        assert publisher_stats.shared_cache_hits == 0  # it computed, not reused

        before = baseline.engine.stats.snapshot()
        baseline.evaluate_batch(genotypes)
        delta = baseline.engine.stats.snapshot() - before
        # Every distinct genotype is served from the shared cache — except
        # the all-zero probe genotype, which the baseline problem's own
        # construction already pulled from the shared cache into its local
        # memo.  No model work either way, and shared hits are counted
        # separately from local-memo hits.
        assert delta.shared_cache_hits == len(genotypes) - 1
        assert delta.model_evaluations == 0
        assert delta.genotype_cache_hits == 1
        # Re-requesting now hits the local memo, not the shared cache.
        before = baseline.engine.stats.snapshot()
        baseline.evaluate_batch(genotypes)
        delta = baseline.engine.stats.snapshot() - before
        assert delta.genotype_cache_hits == len(genotypes)
        assert delta.shared_cache_hits == 0

    def test_projection_reuses_the_exact_component_floats(self):
        shared = SharedGenotypeCache()
        full, baseline = self._pair(shared)
        genotype = (1, 0, 1, 0, 1, 1)
        reference = full.evaluate(genotype)
        served = baseline.evaluate(genotype)
        assert baseline.engine.stats.shared_cache_hits >= 1
        # (energy, delay) projected from (energy, quality, delay): bitwise.
        assert served.objectives == (
            reference.objectives[0],
            reference.objectives[2],
        )
        assert served.feasible == reference.feasible
        assert served.phenotype == reference.phenotype

    def test_baseline_records_do_not_serve_the_full_problem(self):
        shared = SharedGenotypeCache()
        full, baseline = self._pair(shared)
        genotype = (0, 1, 0, 1, 0, 0)
        baseline.evaluate(genotype)
        before = full.engine.stats.snapshot()
        full.evaluate(genotype)
        delta = full.engine.stats.snapshot() - before
        # Quality is missing from the record: a safe miss, computed locally.
        assert delta.shared_cache_hits == 0
        assert delta.model_evaluations == 1

    def test_mismatched_fingerprints_never_share(self):
        shared = SharedGenotypeCache()
        problem_a = WbsnDseProblem(
            build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
            **self.SMALL,
            engine=EvaluationEngine(shared_cache=shared),
        )
        problem_b = WbsnDseProblem(
            build_case_study_evaluator(  # different aggregation weight
                n_nodes=2, applications=("dwt", "cs"), theta=0.9
            ),
            **self.SMALL,
            engine=EvaluationEngine(shared_cache=shared),
        )
        genotype = (1, 0, 1, 0, 1, 1)
        problem_a.evaluate(genotype)
        before = problem_b.engine.stats.snapshot()
        problem_b.evaluate(genotype)
        delta = problem_b.engine.stats.snapshot() - before
        assert delta.shared_cache_hits == 0
        assert delta.model_evaluations == 1

    def test_csma_and_beacon_problems_never_cross_share(self):
        shared = SharedGenotypeCache()
        from repro.dse.problem import csma_mac_parameterisation

        beacon = WbsnDseProblem(
            build_case_study_evaluator(theta=0.5),
            **self.SMALL,
            engine=EvaluationEngine(shared_cache=shared),
        )
        csma = WbsnDseProblem(
            build_csma_case_study_evaluator(theta=0.5),
            compression_ratios=self.SMALL["compression_ratios"],
            frequencies_hz=self.SMALL["frequencies_hz"],
            mac_parameterisation=csma_mac_parameterisation(
                payload_bytes=(60, 80), backoff_exponent_pairs=((3, 5), (4, 6))
            ),
            engine=EvaluationEngine(shared_cache=shared),
        )
        assert len(beacon.space) == len(csma.space)
        genotype = tuple(1 for _ in range(len(beacon.space)))
        beacon.evaluate(genotype)
        before = csma.engine.stats.snapshot()
        csma.evaluate(genotype)
        delta = csma.engine.stats.snapshot() - before
        assert delta.shared_cache_hits == 0
        assert delta.model_evaluations == 1

    def test_shared_cache_fronts_identical_to_private_caches(self):
        settings = Nsga2Settings(population_size=16, generations=6, seed=9)
        shared = SharedGenotypeCache()
        full_shared, baseline_shared = self._pair(shared)
        full_private, baseline_private = self._pair(None)
        assert front_signature(
            Nsga2(full_shared, settings).run()
        ) == front_signature(Nsga2(full_private, settings).run())
        assert front_signature(
            Nsga2(baseline_shared, settings).run()
        ) == front_signature(Nsga2(baseline_private, settings).run())
        # And the reuse actually happened (same seed => shared genotypes).
        assert baseline_shared.engine.stats.shared_cache_hits > 0

    def test_lru_eviction_counters_unaffected_by_the_shared_cache(self):
        def run(shared):
            problem = WbsnDseProblem(
                build_case_study_evaluator(
                    n_nodes=2, applications=("dwt", "cs")
                ),
                **SMALL_DOMAINS,
                engine=EvaluationEngine(
                    node_cache_max_entries=4,
                    vectorized=False,
                    shared_cache=shared,
                ),
                vectorized=False,
            )
            problem.evaluate_batch(list(problem.space.enumerate_genotypes()))
            return problem.engine.stats.snapshot()

        without = run(None)
        with_shared = run(SharedGenotypeCache())
        assert with_shared.node_cache_evictions == without.node_cache_evictions
        assert with_shared.node_cache_evictions > 0
        assert with_shared.node_model_calls == without.node_model_calls

    def test_disabled_genotype_cache_deactivates_sharing(self):
        shared = SharedGenotypeCache()
        publisher = WbsnDseProblem(
            build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
            **self.SMALL,
            engine=EvaluationEngine(shared_cache=shared),
        )
        consumer = WbsnDseProblem(
            build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
            **self.SMALL,
            engine=EvaluationEngine(genotype_cache=False, shared_cache=shared),
        )
        genotype = (1, 1, 1, 1, 1, 1)
        publisher.evaluate(genotype)
        before = consumer.engine.stats.snapshot()
        consumer.evaluate(genotype)
        delta = consumer.engine.stats.snapshot() - before
        assert delta.shared_cache_hits == 0
        assert delta.model_evaluations == 1

    def test_fingerprint_covers_the_mac_decode_rule(self):
        """Same domains, different genotype->chi_mac mapping: no sharing."""
        from repro.dse.problem import MacParameterisation, beacon_mac_parameterisation
        from repro.dse.space import ParameterDomain

        reference = beacon_mac_parameterisation(
            payload_bytes=(60, 80), order_pairs=((4, 4), (4, 6))
        )

        def swapped_orders(payload, orders):
            superframe_order, beacon_order = orders
            # Deliberately different decode of the same domain values.
            return WbsnDseProblem.build_mac_config(
                payload, (superframe_order, max(superframe_order, beacon_order))
            )

        twisted = MacParameterisation(
            name=reference.name,
            domains=tuple(
                ParameterDomain(d.name, d.values) for d in reference.domains
            ),
            config_factory=swapped_orders,
        )
        evaluator = build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
        problem_a = WbsnDseProblem(
            evaluator,
            compression_ratios=self.SMALL["compression_ratios"],
            frequencies_hz=self.SMALL["frequencies_hz"],
            mac_parameterisation=reference,
        )
        problem_b = WbsnDseProblem(
            build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
            compression_ratios=self.SMALL["compression_ratios"],
            frequencies_hz=self.SMALL["frequencies_hz"],
            mac_parameterisation=twisted,
        )
        fp_a = problem_a.evaluation_fingerprint()
        fp_b = problem_b.evaluation_fingerprint()
        assert fp_a is not None
        # Local function: unpicklable by reference from a test body is fine
        # too (None) — either way the fingerprints must not collide.
        assert fp_a != fp_b

    def test_unpicklable_factories_disable_sharing_safely(self):
        from repro.dse.problem import MacParameterisation
        from repro.dse.space import ParameterDomain

        lambda_parameterisation = MacParameterisation(
            name="beacon",
            domains=(
                ParameterDomain("mac.payload_bytes", (60, 80)),
                ParameterDomain("mac.orders", ((4, 4), (4, 6))),
            ),
            config_factory=lambda payload, orders: WbsnDseProblem.build_mac_config(
                payload, orders
            ),
        )
        problem = WbsnDseProblem(
            build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
            compression_ratios=self.SMALL["compression_ratios"],
            frequencies_hz=self.SMALL["frequencies_hz"],
            mac_parameterisation=lambda_parameterisation,
        )
        assert problem.evaluation_fingerprint() is None

    def test_bounded_shared_cache_evicts_lru_and_stays_correct(self):
        shared = SharedGenotypeCache(max_entries=8)
        full, baseline = self._pair(shared)
        genotypes = list(full.space.enumerate_genotypes())[:32]
        full.evaluate_batch(genotypes)
        assert len(shared) == 8
        assert shared.evictions > 0
        # Only the 8 most recent genotypes are shared; older ones recompute.
        before = baseline.engine.stats.snapshot()
        baseline.evaluate_batch(genotypes)
        delta = baseline.engine.stats.snapshot() - before
        assert 0 < delta.shared_cache_hits <= 8
        # Correctness unaffected: served and recomputed designs agree with
        # an uncached reference problem.
        _, reference = self._pair(None)
        for genotype in genotypes:
            assert (
                baseline.engine.evaluate(genotype).objectives
                == reference.evaluate(genotype).objectives
            )

    def test_invalid_shared_cache_bound_rejected(self):
        with pytest.raises(ValueError):
            SharedGenotypeCache(max_entries=0)

    def test_custom_mac_parameterisation_clears_beacon_attributes(self):
        from repro.dse.problem import csma_mac_parameterisation

        csma = WbsnDseProblem(
            build_csma_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
            compression_ratios=self.SMALL["compression_ratios"],
            frequencies_hz=self.SMALL["frequencies_hz"],
            mac_parameterisation=csma_mac_parameterisation(),
        )
        assert csma.payload_bytes is None
        assert csma.order_pairs is None
        beacon = small_problem()
        assert beacon.payload_bytes == SMALL_DOMAINS["payload_bytes"]
        assert beacon.order_pairs == SMALL_DOMAINS["order_pairs"]

    def test_fingerprint_covers_the_node_decode_rule(self):
        """A subclass with a different node decode never shares records."""

        class TwistedNodeProblem(WbsnDseProblem):
            @staticmethod
            def build_node_config(values):
                from repro.shimmer.platform import ShimmerNodeConfig

                # Deliberately ignores the frequency domain value.
                return ShimmerNodeConfig(
                    compression_ratio=values["compression_ratio"],
                    microcontroller_frequency_hz=8e6,
                )

        plain = small_problem()
        twisted = TwistedNodeProblem(
            build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
            **SMALL_DOMAINS,
        )
        fp_plain = plain.evaluation_fingerprint()
        fp_twisted = twisted.evaluation_fingerprint()
        assert fp_plain is not None
        assert fp_plain != fp_twisted


class TestSharedCacheLruRecency:
    """Regression: re-storing a hot record must refresh its LRU position."""

    @staticmethod
    def _design(tag: int):
        from repro.dse.problem import EvaluatedDesign

        return EvaluatedDesign(
            genotype=(tag,), objectives=(float(tag),), feasible=True, phenotype={}
        )

    def test_refreshed_record_outlives_a_cold_one(self):
        cache = SharedGenotypeCache(max_entries=2)
        components = ("energy",)
        hot, cold, newcomer = (b"fp", (0,)), (b"fp", (1,)), (b"fp", (2,))
        cache.store(*hot, components, self._design(0))
        cache.store(*cold, components, self._design(1))
        # Re-store the hot key (same component set: the record is kept, but
        # the store is a use and must refresh recency).
        cache.store(*hot, components, self._design(0))
        cache.store(*newcomer, components, self._design(2))
        assert cache.evictions == 1
        # The cold key was evicted, the refreshed hot key survived.
        assert cache.lookup(b"fp", (0,), components) is not None
        assert cache.lookup(b"fp", (1,), components) is None
        assert cache.lookup(b"fp", (2,), components) is not None

    def test_eviction_order_without_refresh_is_plain_fifo_of_use(self):
        cache = SharedGenotypeCache(max_entries=2)
        components = ("energy",)
        cache.store(b"fp", (0,), components, self._design(0))
        cache.store(b"fp", (1,), components, self._design(1))
        cache.store(b"fp", (2,), components, self._design(2))
        assert cache.lookup(b"fp", (0,), components) is None
        assert cache.lookup(b"fp", (1,), components) is not None
        assert cache.lookup(b"fp", (2,), components) is not None


class TestDseResultThroughputClamp:
    """Regression: zero-duration runs must serialize as valid strict JSON."""

    def test_zero_duration_reports_zero_not_inf(self):
        import json

        from repro.dse.runner import DseResult

        result = DseResult(front=(), evaluations=128, wall_clock_s=0.0)
        assert result.evaluations_per_second == 0.0
        assert result.model_evaluations_per_second == 0.0
        payload = json.dumps(
            {
                "evaluations_per_second": result.evaluations_per_second,
                "model_evaluations_per_second": result.model_evaluations_per_second,
            },
            allow_nan=False,
        )
        assert "Infinity" not in payload

    def test_positive_duration_unchanged(self):
        from repro.dse.runner import DseResult

        result = DseResult(front=(), evaluations=100, wall_clock_s=2.0)
        assert result.evaluations_per_second == 50.0
