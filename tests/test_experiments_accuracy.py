"""Integration tests of the accuracy experiments (Figures 3 and 4)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.fig3_node_energy import estimate_node_energy, run_fig3
from repro.experiments.fig4_prd import run_fig4
from repro.shimmer.platform import ShimmerNodeConfig


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3()


@pytest.fixture(scope="module")
def fig4_result():
    # A shorter record keeps the test quick; the benchmark runs the full one.
    return run_fig4(duration_s=6.0)


class TestFig3:
    def test_sweep_covers_both_applications_and_all_configs(self, fig3_result):
        assert len(fig3_result.records) == 2 * 2 * 4
        assert {r.application for r in fig3_result.records} == {"dwt", "cs"}

    def test_estimation_error_stays_below_the_paper_bound(self, fig3_result):
        """Paper: the estimation error never exceeds 1.74 %."""
        assert fig3_result.max_error_percent < 2.5

    def test_dwt_error_is_smaller_than_cs_error(self, fig3_result):
        """Paper: 0.13 % (DWT) versus 0.88 % (CS) average error."""
        assert fig3_result.average_error_percent("dwt") < fig3_result.average_error_percent("cs")

    def test_dwt_cannot_run_at_1mhz(self, fig3_result):
        """Paper: the model predicts the DWT duty cycle exceeds 100 % at 1 MHz."""
        infeasible = fig3_result.infeasible_configurations()
        assert infeasible
        assert all(r.application == "dwt" and r.frequency_hz == 1e6 for r in infeasible)
        feasible_dwt = [
            r for r in fig3_result.records_for("dwt") if r.frequency_hz == 8e6
        ]
        assert all(r.feasible for r in feasible_dwt)

    def test_energy_grows_with_compression_ratio(self, fig3_result):
        for application in ("dwt", "cs"):
            for frequency in (8e6,):
                series = [
                    r.estimated_mj_per_s
                    for r in fig3_result.records_for(application)
                    if r.frequency_hz == frequency
                ]
                assert series == sorted(series)

    def test_estimate_helper_matches_evaluator(self, evaluator, mac_config):
        config = ShimmerNodeConfig(0.3, 8e6)
        energy_w, duty, schedulable = estimate_node_energy("dwt", config, mac_config)
        network = evaluator.evaluate([config] * 6, mac_config)
        assert energy_w == pytest.approx(network.nodes[0].energy.total_w, rel=1e-9)
        assert schedulable


class TestFig4:
    def test_sweep_covers_both_applications(self, fig4_result):
        assert len(fig4_result.records) == 2 * 8

    def test_prd_decreases_with_compression_ratio(self, fig4_result):
        for application in ("dwt", "cs"):
            series = [r.measured_prd for r in fig4_result.records_for(application)]
            # Allow small non-monotonicity from measurement noise on CS.
            assert series[0] > series[-1]
            drops = sum(
                1 for a, b in zip(series, series[1:]) if b <= a + 1.0
            )
            assert drops >= len(series) - 2

    def test_cs_prd_is_above_dwt_prd(self, fig4_result):
        dwt = {r.compression_ratio: r.measured_prd for r in fig4_result.records_for("dwt")}
        cs = {r.compression_ratio: r.measured_prd for r in fig4_result.records_for("cs")}
        for ratio in dwt:
            assert cs[ratio] > dwt[ratio]

    def test_polynomial_fit_tracks_the_measurements(self, fig4_result):
        """Paper: 0.46 % (DWT) and 0.92 % (CS) average estimation error."""
        assert fig4_result.average_error_percent("dwt") < 1.0
        assert fig4_result.average_error_percent("cs") < 6.0

    def test_fitted_polynomials_are_degree_five(self, fig4_result):
        assert fig4_result.polynomials["dwt"].degree == 5
        assert fig4_result.polynomials["cs"].degree == 5
