"""Integration tests of the delay-validation, speed and Figure 5 experiments."""

from __future__ import annotations

import pytest

from repro.experiments.delay_validation import run_delay_validation
from repro.experiments.dse_speed import run_dse_speed
from repro.experiments.fig5_pareto import run_fig5


@pytest.fixture(scope="module")
def delay_result():
    return run_delay_validation(n_configurations=20, duration_s=30.0, seed=5)


@pytest.fixture(scope="module")
def fig5_result():
    return run_fig5(
        population_size=24, generations=12, annealing_iterations=400, seed=1
    )


class TestDelayValidation:
    def test_requested_number_of_configurations(self, delay_result):
        assert len(delay_result.records) == 20

    def test_bound_is_never_violated(self, delay_result):
        """Paper: equation (9) is a worst-case bound of the packet delay."""
        assert delay_result.violations == 0
        for record in delay_result.records:
            assert record.bound_holds

    def test_average_overestimation_is_moderate(self, delay_result):
        """Paper: the average overestimation stays below ~100 ms."""
        assert 0.0 < delay_result.average_overestimation_s < 0.150

    def test_simulated_delays_are_positive(self, delay_result):
        assert all(r.simulated_mean_delay_s > 0 for r in delay_result.records)


class TestDseSpeed:
    def test_model_is_orders_of_magnitude_faster(self):
        result = run_dse_speed(model_evaluations=300, simulated_seconds=120.0)
        """Paper: ~4800 model evaluations/s vs minutes per simulation."""
        assert result.model_evaluations_per_second > 1000
        assert result.speedup > 100
        assert result.speedup_orders_of_magnitude > 2.0


class TestFig5:
    def test_full_model_front_is_rich(self, fig5_result):
        assert len(fig5_result.full_model_front) >= 15

    def test_baseline_recovers_only_a_small_fraction(self, fig5_result):
        """Paper: the energy/delay baseline contains only ~7 % of the trade-offs."""
        assert fig5_result.baseline_coverage < 0.25

    def test_projections_have_the_three_planes(self, fig5_result):
        projections = fig5_result.projections
        assert set(projections) == {"energy-delay", "energy-prd", "prd-delay"}
        assert all(len(points) == len(fig5_result.full_model_front) for points in projections.values())

    def test_search_algorithms_agree_reasonably(self, fig5_result):
        """Paper: no relevant difference between GA and simulated annealing."""
        assert fig5_result.algorithm_hypervolume_gap < 0.5

    def test_objectives_are_finite_and_positive(self, fig5_result):
        for point in fig5_result.full_model_front:
            assert all(value > 0 for value in point)
