"""Chaos suite: deterministic fault injection against every recovery path.

The fault-tolerance layer is only trustworthy if its failure paths run in
CI, so every scenario here *makes* the failure happen through the seedable
:mod:`repro.engine.faults` harness: workers killed mid-shard, workers hung
past the batch deadline, exceptions raised inside kernels, checkpoint bytes
corrupted on their way to disk, whole sweeps SIGKILL'd between chunks.  The
invariant under test is always the same one the clean paths promise — the
final front is bitwise identical (membership and ordering) to an
undisturbed run — plus the observability contract: every failure, retry and
degradation shows up in the engine counters.

Problems are the small two-node/64-configuration spaces of the sharded
suite, so the whole file stays well under the CI job's two-minute budget.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.dse.exhaustive import ExhaustiveSearch
from repro.dse.problem import WbsnDseProblem, csma_mac_parameterisation
from repro.dse.random_search import RandomSearch
from repro.dse.runner import run_algorithm
from repro.engine import (
    CheckpointError,
    CheckpointWarning,
    EngineDegradationWarning,
    EngineTimeoutError,
    EvaluationEngine,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ProcessBackend,
    RetryPolicy,
    SweepCheckpoint,
    WorkerRecoveryExhausted,
    inject_faults,
    load_checkpoint,
    make_backend,
    save_checkpoint,
)
from repro.engine import faults
from repro.engine.checkpoint import (
    CHECKPOINT_VERSION,
    MAGIC,
    load_checkpoint_if_valid,
)
from repro.experiments.casestudy import (
    build_case_study_evaluator,
    build_csma_case_study_evaluator,
)

#: Small two-node spaces (64 configurations) keep the pool runs fast.
NODE_DOMAINS = dict(
    compression_ratios=(0.2, 0.3),
    frequencies_hz=(4e6, 8e6),
)


def beacon_problem(engine: EvaluationEngine) -> WbsnDseProblem:
    return WbsnDseProblem(
        build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
        **NODE_DOMAINS,
        payload_bytes=(60, 80),
        order_pairs=((4, 4), (4, 6)),
        engine=engine,
    )


def csma_problem(engine: EvaluationEngine) -> WbsnDseProblem:
    return WbsnDseProblem(
        build_csma_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
        **NODE_DOMAINS,
        mac_parameterisation=csma_mac_parameterisation(
            payload_bytes=(60, 80),
            backoff_exponent_pairs=((3, 5), (4, 6)),
        ),
        engine=engine,
    )


FAMILIES = {"beacon": beacon_problem, "csma": csma_problem}

#: Fast retries for tests: exhausting two attempts costs ~10 ms of backoff.
FAST_RETRIES = RetryPolicy(max_attempts=2, backoff_base_s=0.005)

_REFERENCE_FRONTS: dict[str, list] = {}


def reference_front(family: str) -> list:
    """The undisturbed serial front of a family's exhaustive sweep."""
    if family not in _REFERENCE_FRONTS:
        problem = FAMILIES[family](EvaluationEngine())
        result = run_algorithm(ExhaustiveSearch(problem, chunk_size=16))
        _REFERENCE_FRONTS[family] = front_signature(result.front)
    return _REFERENCE_FRONTS[family]


def front_signature(front):
    return [(design.genotype, design.objectives, design.feasible) for design in front]


def sharded_sweep(family: str, **engine_kwargs):
    """Run the family's exhaustive sweep on a 2-worker sharded engine."""
    engine = EvaluationEngine(backend="sharded", max_workers=2, **engine_kwargs)
    with engine:
        problem = FAMILIES[family](engine)
        result = run_algorithm(ExhaustiveSearch(problem, chunk_size=16))
    return result, engine


# --------------------------------------------------------------------------
# The harness itself: deterministic, seedable, picklable.


class TestFaultPlan:
    def test_spec_validation(self):
        with pytest.raises(ValueError, match="site"):
            FaultSpec(site="", action="raise")
        with pytest.raises(ValueError, match="action"):
            FaultSpec(site="shard", action="explode")
        with pytest.raises(ValueError, match="delay_s"):
            FaultSpec(site="shard", action="hang", delay_s=-1.0)

    def test_pinned_invocation_fires_exactly_once(self):
        plan = FaultPlan([FaultSpec(site="shard", action="raise", at=(1,))])
        plan.fire("shard", 0)  # no fault
        with pytest.raises(InjectedFault):
            plan.fire("shard", 1)
        plan.fire("shard", 2)  # already past the pinned submission
        assert plan.fired == [("shard", 1, "raise")]

    def test_unindexed_sites_count_their_own_invocations(self):
        plan = FaultPlan([FaultSpec(site="kernel", action="raise", at=(2,))])
        plan.fire("kernel")
        plan.fire("kernel")
        with pytest.raises(InjectedFault):
            plan.fire("kernel")

    def test_mangle_is_deterministic_for_a_seed(self):
        data = bytes(range(256))
        spec = FaultSpec(site="checkpoint", action="flip-byte")
        first = FaultPlan([spec], seed=7).mangle("checkpoint", data)
        second = FaultPlan([spec], seed=7).mangle("checkpoint", data)
        assert first == second != data
        assert len(first) == len(data)
        # A different seed flips a different byte (for this data length).
        other = FaultPlan([spec], seed=8).mangle("checkpoint", data)
        assert other != first

    def test_mangle_truncate_keeps_a_prefix(self):
        data = bytes(range(64))
        plan = FaultPlan(
            [FaultSpec(site="checkpoint", action="truncate", offset=10)]
        )
        assert plan.mangle("checkpoint", data) == data[:10]

    def test_plans_pickle_without_their_observations(self):
        plan = FaultPlan([FaultSpec(site="shard", action="raise", at=(0,))], seed=3)
        with pytest.raises(InjectedFault):
            plan.fire("shard", 0)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.specs == plan.specs
        assert clone.seed == plan.seed
        assert clone.fired == []  # the worker starts its own observation log

    def test_inject_faults_scopes_the_installation(self):
        plan = FaultPlan([])
        assert faults.installed_fault_plan() is None
        with inject_faults(plan) as installed:
            assert installed is plan
            assert faults.installed_fault_plan() is plan
        assert faults.installed_fault_plan() is None


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_base_s=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(batch_timeout_s=0.0)

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(backoff_base_s=0.1, backoff_multiplier=3.0)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.3)
        assert policy.backoff_s(3) == pytest.approx(0.9)

    def test_make_backend_rejects_policy_with_an_instance(self):
        with pytest.raises(ValueError, match="retry_policy"):
            make_backend(ProcessBackend(), retry_policy=RetryPolicy())

    def test_make_backend_forwards_policy(self):
        policy = RetryPolicy(max_attempts=5)
        backend = make_backend("sharded", retry_policy=policy)
        assert backend.retry_policy is policy


# --------------------------------------------------------------------------
# Worker recovery: the front survives kills, crashes and hangs bit for bit.


@pytest.mark.parametrize("family", sorted(FAMILIES))
class TestWorkerRecovery:
    def test_injected_worker_exception_is_retried(self, family):
        plan = FaultPlan([FaultSpec(site="shard", action="raise", at=(0,))])
        with inject_faults(plan):
            result, engine = sharded_sweep(family, retry_policy=FAST_RETRIES)
        assert front_signature(result.front) == reference_front(family)
        assert engine.stats.worker_failures == 1
        assert engine.stats.batches_retried == 1
        assert engine.stats.degraded_batches == 0
        assert engine.stats.retry_wait_seconds > 0
        assert result.worker_failures == 1
        assert result.batches_retried == 1

    def test_killed_worker_breaks_the_pool_and_is_retried(self, family):
        plan = FaultPlan([FaultSpec(site="shard", action="kill", at=(0,))])
        with inject_faults(plan):
            result, engine = sharded_sweep(family, retry_policy=FAST_RETRIES)
        assert front_signature(result.front) == reference_front(family)
        assert engine.stats.worker_failures >= 1
        assert engine.stats.batches_retried >= 1
        assert engine.stats.degraded_batches == 0

    def test_exhausted_retries_degrade_to_the_serial_kernel(self, family):
        plan = FaultPlan([FaultSpec(site="shard", action="kill")])  # every shard
        with inject_faults(plan), pytest.warns(
            EngineDegradationWarning, match="serial kernel"
        ):
            result, engine = sharded_sweep(family, retry_policy=FAST_RETRIES)
        assert front_signature(result.front) == reference_front(family)
        assert engine.stats.degraded_batches > 0
        assert result.degraded_batches == engine.stats.degraded_batches
        # Nothing ever came back from the pool, but the kernel served
        # every design in-process.
        assert engine.stats.sharded_designs == 0
        assert engine.stats.vectorized_designs > 0

    def test_kernel_fault_on_degraded_batch_falls_to_scalar(self, family):
        plan = FaultPlan(
            [
                FaultSpec(site="shard", action="kill"),
                FaultSpec(site="kernel", action="raise"),
            ]
        )
        with inject_faults(plan), pytest.warns(
            EngineDegradationWarning, match="scalar path"
        ):
            result, engine = sharded_sweep(family, retry_policy=FAST_RETRIES)
        assert front_signature(result.front) == reference_front(family)
        assert engine.stats.degraded_batches > 0
        assert engine.stats.sharded_designs == 0
        assert engine.stats.vectorized_designs == 0  # scalar rung only

    def test_degradation_can_be_disabled(self, family):
        plan = FaultPlan([FaultSpec(site="shard", action="kill")])
        with inject_faults(plan), pytest.raises(WorkerRecoveryExhausted):
            sharded_sweep(
                family, retry_policy=FAST_RETRIES, degrade_on_failure=False
            )


class TestScalarBackendRecovery:
    def test_injected_chunk_exception_is_retried(self):
        serial = beacon_problem(EvaluationEngine())
        genotypes = list(serial.space.enumerate_genotypes())[:32]
        expected = [d.objectives for d in serial.evaluate_batch(genotypes)]
        plan = FaultPlan([FaultSpec(site="chunk", action="raise", at=(0,))])
        with inject_faults(plan):
            engine = EvaluationEngine(
                backend="process",
                max_workers=2,
                vectorized=False,
                retry_policy=FAST_RETRIES,
            )
            with engine:
                problem = beacon_problem(engine)
                designs = problem.evaluate_batch(genotypes)
        assert [d.objectives for d in designs] == expected
        assert engine.stats.worker_failures == 1
        assert engine.stats.batches_retried == 1

    def test_completed_units_survive_a_failed_attempt(self):
        # Four chunk units on two workers.  Unit 1 hangs long enough for
        # units 0, 2 and 3 to finish, then raises: the recovery loop must
        # harvest those completed futures before tearing the pool down and
        # re-dispatch *only* unit 1.  Submission ids are monotonic (0-3 on
        # the first attempt, 4 for the retried unit), so a fault armed on
        # ids 5-6 is a tripwire that only fires if an already-completed
        # unit is thrown away and re-dispatched.
        serial = beacon_problem(EvaluationEngine())
        genotypes = list(serial.space.enumerate_genotypes())[:32]
        expected = [d.objectives for d in serial.evaluate_batch(genotypes)]
        plan = FaultPlan(
            [
                FaultSpec(site="chunk", action="hang", delay_s=1.0, at=(1,)),
                FaultSpec(site="chunk", action="raise", at=(1,)),
                FaultSpec(site="chunk", action="raise", at=(5, 6)),
            ]
        )
        with inject_faults(plan):
            engine = EvaluationEngine(
                backend="process",
                max_workers=2,
                vectorized=False,
                chunk_size=8,
                retry_policy=FAST_RETRIES,
            )
            with engine:
                problem = beacon_problem(engine)
                designs = problem.evaluate_batch(genotypes)
        assert [d.objectives for d in designs] == expected
        # One failure, one retry: the tripwire never fired, so the retry
        # pool received exactly the one unfinished unit.
        assert engine.stats.worker_failures == 1
        assert engine.stats.batches_retried == 1
        assert engine.stats.degraded_batches == 0

    def test_hung_worker_hits_the_batch_deadline(self):
        # The hang outlives the deadline by far; the recovery loop must cut
        # it off, name the batch and shard, and (degradation disabled)
        # surface the timeout as the exhaustion's cause.
        plan = FaultPlan(
            [FaultSpec(site="chunk", action="hang", delay_s=30.0, at=(0,))]
        )
        with inject_faults(plan):
            engine = EvaluationEngine(
                backend="process",
                max_workers=2,
                vectorized=False,
                degrade_on_failure=False,
                retry_policy=RetryPolicy(max_attempts=1, batch_timeout_s=0.5),
            )
            with engine:
                problem = beacon_problem(engine)
                genotypes = list(problem.space.enumerate_genotypes())[:8]
                with pytest.raises(WorkerRecoveryExhausted) as excinfo:
                    problem.evaluate_batch(genotypes)
        cause = excinfo.value.__cause__
        assert isinstance(cause, EngineTimeoutError)
        assert cause.shard == 0
        assert "scalar chunk batch" in str(cause)
        assert "shard 0" in str(cause)

    def test_timed_out_batch_degrades_by_default(self):
        plan = FaultPlan(
            [FaultSpec(site="chunk", action="hang", delay_s=30.0, at=(0,))]
        )
        serial = beacon_problem(EvaluationEngine())
        genotypes = list(serial.space.enumerate_genotypes())[:8]
        expected = [d.objectives for d in serial.evaluate_batch(genotypes)]
        with inject_faults(plan):
            engine = EvaluationEngine(
                backend="process",
                max_workers=2,
                vectorized=False,
                retry_policy=RetryPolicy(max_attempts=1, batch_timeout_s=0.5),
            )
            with engine, pytest.warns(EngineDegradationWarning):
                problem = beacon_problem(engine)
                designs = problem.evaluate_batch(genotypes)
        assert [d.objectives for d in designs] == expected
        assert engine.stats.worker_failures == 1
        assert engine.stats.degraded_batches == 1


class TestResourceLifecycleUnderFaults:
    def test_no_shared_memory_leaks_on_injected_failure_paths(self):
        before = set(os.listdir("/dev/shm"))
        plan = FaultPlan([FaultSpec(site="shard", action="kill")])
        with inject_faults(plan), pytest.warns(EngineDegradationWarning):
            result, engine = sharded_sweep("beacon", retry_policy=FAST_RETRIES)
        assert engine.backend._executor is None
        assert engine.backend._arena is None
        leaked = set(os.listdir("/dev/shm")) - before
        assert not leaked, f"shared-memory segments leaked: {sorted(leaked)}"

    def test_backend_close_is_idempotent(self):
        engine = EvaluationEngine(backend="sharded", max_workers=2)
        problem = beacon_problem(engine)
        problem.evaluate_batch(list(problem.space.enumerate_genotypes())[:16])
        engine.close()
        engine.close()  # double close must be a no-op
        assert engine.backend._executor is None
        assert engine.backend._arena is None

    def test_arena_close_is_idempotent(self):
        from repro.engine.sharded import SharedArrayArena

        arena = SharedArrayArena({"table": np.arange(8.0)})
        arena.close()
        arena.close()  # second close: segment already unlinked, no raise


# --------------------------------------------------------------------------
# Checkpoint format: atomic, versioned, checksummed — validated on load.


def _checkpoint(tmp_path, **overrides):
    fields = dict(
        algorithm="exhaustive",
        space_size=64,
        cursor=32,
        any_feasible=True,
        genotypes=np.arange(12, dtype=np.int64).reshape(3, 4),
        objectives=np.linspace(0.0, 1.0, 9).reshape(3, 3),
        feasible=np.array([True, False, True]),
        violation_counts=np.array([0, 2, 0], dtype=np.int64),
        rng_state={"state": 123},
        fingerprint=b"fp",
        extra={"samples": 10},
    )
    fields.update(overrides)
    return SweepCheckpoint(**fields)


class TestCheckpointFormat:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        checkpoint = _checkpoint(tmp_path)
        save_checkpoint(path, checkpoint)
        loaded = load_checkpoint(path)
        assert loaded.algorithm == checkpoint.algorithm
        assert loaded.cursor == checkpoint.cursor
        assert loaded.any_feasible is checkpoint.any_feasible
        np.testing.assert_array_equal(loaded.genotypes, checkpoint.genotypes)
        np.testing.assert_array_equal(loaded.objectives, checkpoint.objectives)
        assert loaded.rng_state == checkpoint.rng_state
        assert loaded.fingerprint == checkpoint.fingerprint
        assert loaded.extra == checkpoint.extra
        # Atomicity: no temporary file left behind.
        assert list(tmp_path.iterdir()) == [path]

    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="unreadable"):
            load_checkpoint(tmp_path / "absent.ckpt")
        # The resume-side loader treats a missing file as a silent cold
        # start (first run), not a warning.
        assert (
            load_checkpoint_if_valid(
                tmp_path / "absent.ckpt",
                algorithm="exhaustive",
                space_size=64,
                fingerprint=None,
            )
            is None
        )

    def test_truncated_file(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        save_checkpoint(path, _checkpoint(tmp_path))
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)
        path.write_bytes(blob[:10])  # shorter than the header itself
        with pytest.raises(CheckpointError, match="truncated"):
            load_checkpoint(path)

    def test_foreign_magic(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        save_checkpoint(path, _checkpoint(tmp_path))
        blob = bytearray(path.read_bytes())
        blob[0] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="magic"):
            load_checkpoint(path)

    def test_version_mismatch(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        save_checkpoint(path, _checkpoint(tmp_path))
        blob = bytearray(path.read_bytes())
        future = CHECKPOINT_VERSION + 1
        blob[len(MAGIC) : len(MAGIC) + 4] = future.to_bytes(4, "little")
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_flipped_payload_byte(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        save_checkpoint(path, _checkpoint(tmp_path))
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointError, match="integrity"):
            load_checkpoint(path)

    def test_foreign_payload_type(self, tmp_path):
        import hashlib

        path = tmp_path / "sweep.ckpt"
        payload = pickle.dumps({"not": "a checkpoint"})
        path.write_bytes(
            MAGIC
            + CHECKPOINT_VERSION.to_bytes(4, "little")
            + hashlib.sha256(payload).digest()
            + payload
        )
        with pytest.raises(CheckpointError, match="SweepCheckpoint"):
            load_checkpoint(path)

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            (dict(algorithm="random-search"), "algorithm"),
            (dict(space_size=65), "space"),
            (dict(fingerprint=b"other"), "fingerprint"),
        ],
    )
    def test_context_mismatches_warn_and_cold_start(
        self, tmp_path, overrides, fragment
    ):
        path = tmp_path / "sweep.ckpt"
        save_checkpoint(path, _checkpoint(tmp_path, **overrides))
        with pytest.warns(CheckpointWarning, match=fragment):
            restored = load_checkpoint_if_valid(
                path, algorithm="exhaustive", space_size=64, fingerprint=b"fp"
            )
        assert restored is None

    @pytest.mark.parametrize(
        "overrides, fragment",
        [
            (dict(cursor=65), "cursor"),  # past the 64-design space
            (dict(cursor=-1), "cursor"),
            (dict(feasible=np.array([True])), "mismatched row counts"),
            (
                dict(objectives=np.zeros((5, 3)), violation_counts=np.zeros(5)),
                "mismatched row counts",
            ),
        ],
    )
    def test_inconsistent_state_warns_and_cold_starts(
        self, tmp_path, overrides, fragment
    ):
        # The checksum only proves the writer's bytes survived; a writer
        # that serialized nonsense (cursor outside the space, archive
        # columns of different lengths) must still cold-start the resume.
        path = tmp_path / "sweep.ckpt"
        save_checkpoint(path, _checkpoint(tmp_path, **overrides))
        with pytest.warns(CheckpointWarning, match=fragment):
            restored = load_checkpoint_if_valid(
                path, algorithm="exhaustive", space_size=64, fingerprint=b"fp"
            )
        assert restored is None

    def test_tmp_sibling_names_are_unique_per_write(self, tmp_path):
        from repro.engine.checkpoint import _tmp_sibling

        path = tmp_path / "sweep.ckpt"
        names = {_tmp_sibling(path).name for _ in range(4)}
        assert len(names) == 4  # the counter makes every write distinct
        for name in names:
            assert name.startswith("sweep.ckpt.")
            assert name.endswith(".tmp")
            assert f".{os.getpid()}." in name  # and the pid separates processes

    def test_failed_write_keeps_the_previous_file_and_no_tmp(
        self, tmp_path, monkeypatch
    ):
        from repro.engine.checkpoint import atomic_write_bytes

        path = tmp_path / "sweep.ckpt"
        save_checkpoint(path, _checkpoint(tmp_path))
        before = path.read_bytes()

        def refuse(fd):
            raise OSError("injected: disk full")

        monkeypatch.setattr(os, "fsync", refuse)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_bytes(path, b"half-written")
        monkeypatch.undo()
        # The previous checkpoint is untouched and the tmp file is gone.
        assert path.read_bytes() == before
        assert list(tmp_path.iterdir()) == [path]


# --------------------------------------------------------------------------
# Checkpoint/resume sweeps: interrupted runs finish bitwise identically.


@pytest.mark.parametrize("family", sorted(FAMILIES))
class TestCheckpointedSweeps:
    def test_clean_checkpointed_sweep_matches_reference(self, family, tmp_path):
        path = tmp_path / "sweep.ckpt"
        problem = FAMILIES[family](EvaluationEngine())
        result = run_algorithm(
            ExhaustiveSearch(problem, chunk_size=16, checkpoint_every=1),
            checkpoint_path=str(path),
        )
        assert front_signature(result.front) == reference_front(family)
        assert path.exists()

    def test_resume_of_a_completed_sweep_recomputes_nothing(
        self, family, tmp_path
    ):
        path = tmp_path / "sweep.ckpt"
        run_algorithm(
            ExhaustiveSearch(
                FAMILIES[family](EvaluationEngine()), chunk_size=16
            ),
            checkpoint_path=str(path),
        )
        resumed = run_algorithm(
            ExhaustiveSearch(
                FAMILIES[family](EvaluationEngine()), chunk_size=16
            ),
            checkpoint_path=str(path),
        )
        assert front_signature(resumed.front) == reference_front(family)
        assert resumed.model_evaluations == 0

    def test_aborted_sweep_resumes_bitwise_identically(self, family, tmp_path):
        # An InjectedFault right after the second checkpoint write models a
        # crash at a known persisted state (the SIGKILL variant below kills
        # a real process; this in-process variant runs for both families).
        path = tmp_path / "sweep.ckpt"
        plan = FaultPlan(
            [FaultSpec(site="checkpoint-saved", action="raise", at=(1,))]
        )
        with inject_faults(plan), pytest.raises(InjectedFault):
            run_algorithm(
                ExhaustiveSearch(
                    FAMILIES[family](EvaluationEngine()),
                    chunk_size=16,
                    checkpoint_every=1,
                ),
                checkpoint_path=str(path),
            )
        resumed = run_algorithm(
            ExhaustiveSearch(
                FAMILIES[family](EvaluationEngine()),
                chunk_size=16,
                checkpoint_every=1,
            ),
            checkpoint_path=str(path),
        )
        assert front_signature(resumed.front) == reference_front(family)
        # Two of the four chunks were absorbed before the abort.
        assert resumed.model_evaluations <= 32

    def test_sigkilled_sweep_resumes_bitwise_identically(self, family, tmp_path):
        path = tmp_path / "sweep.ckpt"
        script = textwrap.dedent(
            f"""
            from test_faults import FAMILIES
            from repro.dse.exhaustive import ExhaustiveSearch
            from repro.dse.runner import run_algorithm
            from repro.engine import EvaluationEngine, FaultPlan, FaultSpec
            from repro.engine import install_fault_plan

            install_fault_plan(
                FaultPlan([FaultSpec(site="checkpoint-saved", action="kill", at=(1,))])
            )
            problem = FAMILIES[{family!r}](EvaluationEngine())
            run_algorithm(
                ExhaustiveSearch(problem, chunk_size=16, checkpoint_every=1),
                checkpoint_path={str(path)!r},
            )
            raise SystemExit("the sweep survived its SIGKILL")
            """
        )
        env = dict(os.environ)
        here = os.path.dirname(os.path.abspath(__file__))
        src = os.path.join(os.path.dirname(here), "src")
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src, here, env.get("PYTHONPATH")) if p
        )
        completed = subprocess.run(
            [sys.executable, "-c", script], env=env, capture_output=True, text=True
        )
        assert completed.returncode == -9, completed.stderr  # SIGKILL'd mid-sweep
        assert path.exists()
        resumed = run_algorithm(
            ExhaustiveSearch(
                FAMILIES[family](EvaluationEngine()),
                chunk_size=16,
                checkpoint_every=1,
            ),
            checkpoint_path=str(path),
        )
        assert front_signature(resumed.front) == reference_front(family)
        # Only the chunks after the persisted cursor were re-evaluated.
        assert 0 < resumed.model_evaluations <= 32


class TestCheckpointCorruptionEndToEnd:
    def test_fault_mangled_checkpoint_falls_back_to_cold_start(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        plan = FaultPlan([FaultSpec(site="checkpoint", action="flip-byte")])
        with inject_faults(plan):
            first = run_algorithm(
                ExhaustiveSearch(
                    beacon_problem(EvaluationEngine()), chunk_size=16
                ),
                checkpoint_path=str(path),
            )
        assert front_signature(first.front) == reference_front("beacon")
        # Every write was corrupted in flight; the resume detects it, warns
        # and cold-starts — recomputing the full space, same front.
        with pytest.warns(CheckpointWarning, match="integrity"):
            resumed = run_algorithm(
                ExhaustiveSearch(
                    beacon_problem(EvaluationEngine()), chunk_size=16
                ),
                checkpoint_path=str(path),
            )
        assert front_signature(resumed.front) == reference_front("beacon")
        # A cold start recomputes as much as the first (also cold) run did.
        assert resumed.model_evaluations == first.model_evaluations

    def test_fault_truncated_checkpoint_falls_back_to_cold_start(self, tmp_path):
        path = tmp_path / "sweep.ckpt"
        plan = FaultPlan(
            [FaultSpec(site="checkpoint", action="truncate", offset=6)]
        )
        with inject_faults(plan):
            run_algorithm(
                ExhaustiveSearch(
                    beacon_problem(EvaluationEngine()), chunk_size=16
                ),
                checkpoint_path=str(path),
            )
        with pytest.warns(CheckpointWarning, match="truncated"):
            resumed = run_algorithm(
                ExhaustiveSearch(
                    beacon_problem(EvaluationEngine()), chunk_size=16
                ),
                checkpoint_path=str(path),
            )
        assert front_signature(resumed.front) == reference_front("beacon")


class TestRandomSearchCheckpointing:
    def test_checkpointed_sweep_matches_the_one_shot_path(self, tmp_path):
        reference = run_algorithm(
            RandomSearch(beacon_problem(EvaluationEngine()), samples=48, seed=5)
        )
        path = tmp_path / "rs.ckpt"
        chunked = run_algorithm(
            RandomSearch(
                beacon_problem(EvaluationEngine()),
                samples=48,
                seed=5,
                chunk_size=8,
                checkpoint_every=1,
            ),
            checkpoint_path=str(path),
        )
        assert front_signature(chunked.front) == front_signature(reference.front)

    def test_aborted_sweep_resumes_bitwise_identically(self, tmp_path):
        reference = run_algorithm(
            RandomSearch(beacon_problem(EvaluationEngine()), samples=48, seed=5)
        )
        path = tmp_path / "rs.ckpt"
        plan = FaultPlan(
            [FaultSpec(site="checkpoint-saved", action="raise", at=(1,))]
        )
        with inject_faults(plan), pytest.raises(InjectedFault):
            run_algorithm(
                RandomSearch(
                    beacon_problem(EvaluationEngine()),
                    samples=48,
                    seed=5,
                    chunk_size=8,
                    checkpoint_every=1,
                ),
                checkpoint_path=str(path),
            )
        resumed_problem = beacon_problem(EvaluationEngine())
        resumed = run_algorithm(
            RandomSearch(
                resumed_problem,
                samples=48,
                seed=5,
                chunk_size=8,
                checkpoint_every=1,
            ),
            checkpoint_path=str(path),
        )
        assert front_signature(resumed.front) == front_signature(reference.front)

    def test_seed_or_budget_change_invalidates_the_checkpoint(self, tmp_path):
        path = tmp_path / "rs.ckpt"
        run_algorithm(
            RandomSearch(
                beacon_problem(EvaluationEngine()),
                samples=48,
                seed=5,
                chunk_size=8,
            ),
            checkpoint_path=str(path),
        )
        with pytest.warns(CheckpointWarning, match="seed or sample budget"):
            run_algorithm(
                RandomSearch(
                    beacon_problem(EvaluationEngine()),
                    samples=48,
                    seed=6,
                    chunk_size=8,
                ),
                checkpoint_path=str(path),
            )


class TestRunnerIntegration:
    def test_checkpoint_path_requires_algorithm_support(self):
        class NoCheckpoints:
            problem = None

            def run(self):  # pragma: no cover - never called
                return []

        with pytest.raises(TypeError, match="checkpoint"):
            run_algorithm(NoCheckpoints(), checkpoint_path="x.ckpt")

    def test_object_path_rejects_checkpointing(self):
        problem = beacon_problem(EvaluationEngine())
        with pytest.raises(ValueError, match="columnar"):
            ExhaustiveSearch(problem, columnar=False, checkpoint_path="x.ckpt")
        with pytest.raises(ValueError, match="columnar"):
            RandomSearch(problem, columnar=False, checkpoint_path="x.ckpt")
