"""Golden-front regression fixtures: exact membership *and* ordering.

Small seed-pinned reference fronts for one beacon-enabled and one CSMA/CA
scenario are committed under ``tests/golden/``; the tests recompute the
fronts and assert that every design matches the fixture exactly — genotype,
objective floats (bit for bit, via JSON round-tripped ``repr``), feasibility
— in the exact order the algorithms return them.  Any semantic drift in the
model, the kernels, the caches or the Pareto machinery shows up here as a
diff against a committed artifact.

Regenerate after an *intentional* model change with::

    PYTHONPATH=src python tests/test_golden_fronts.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.dse.exhaustive import ExhaustiveSearch
from repro.dse.nsga2 import Nsga2, Nsga2Settings
from repro.dse.pareto import use_skyline
from repro.dse.problem import WbsnDseProblem, csma_mac_parameterisation
from repro.engine import EvaluationEngine
from repro.experiments.casestudy import (
    build_case_study_evaluator,
    build_csma_case_study_evaluator,
)

GOLDEN_DIR = Path(__file__).resolve().parent / "golden"

#: Node knobs shared by both golden scenarios (2 nodes, 64-point spaces).
NODE_DOMAINS = dict(
    compression_ratios=(0.2, 0.3),
    frequencies_hz=(4e6, 8e6),
)

NSGA2_SETTINGS = Nsga2Settings(population_size=16, generations=6, seed=9)


def beacon_problem(
    engine: EvaluationEngine | None = None, **kwargs
) -> WbsnDseProblem:
    return WbsnDseProblem(
        build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
        **NODE_DOMAINS,
        payload_bytes=(60, 80),
        order_pairs=((4, 4), (4, 6)),
        engine=engine if engine is not None else EvaluationEngine(),
        **kwargs,
    )


def csma_problem(
    engine: EvaluationEngine | None = None, **kwargs
) -> WbsnDseProblem:
    return WbsnDseProblem(
        build_csma_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
        **NODE_DOMAINS,
        mac_parameterisation=csma_mac_parameterisation(
            payload_bytes=(60, 80),
            backoff_exponent_pairs=((3, 5), (4, 6)),
        ),
        engine=engine if engine is not None else EvaluationEngine(),
        **kwargs,
    )


SCENARIOS = {"beacon": beacon_problem, "csma": csma_problem}


def compute_fronts(scenario: str) -> dict[str, list[dict]]:
    """The golden payload: exhaustive and seeded NSGA-II fronts, in order."""
    fronts: dict[str, list[dict]] = {}
    for algorithm, run in (
        ("exhaustive", lambda p: ExhaustiveSearch(p).run()),
        ("nsga2", lambda p: Nsga2(p, NSGA2_SETTINGS).run()),
    ):
        front = run(SCENARIOS[scenario]())
        fronts[algorithm] = [
            {
                "genotype": list(design.genotype),
                "objectives": list(design.objectives),
                "feasible": design.feasible,
            }
            for design in front
        ]
    return fronts


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_front_matches_the_golden_fixture(scenario):
    fixture_path = GOLDEN_DIR / f"fronts_{scenario}.json"
    golden = json.loads(fixture_path.read_text())
    computed = compute_fronts(scenario)
    assert sorted(computed) == sorted(golden), "algorithm set drifted"
    for algorithm in sorted(golden):
        expected = golden[algorithm]
        actual = computed[algorithm]
        # Exact membership AND ordering: compare position by position.
        assert len(actual) == len(expected), (scenario, algorithm)
        for position, (want, got) in enumerate(zip(expected, actual)):
            assert got["genotype"] == want["genotype"], (
                scenario,
                algorithm,
                position,
            )
            # JSON stores repr-round-trippable floats: equality is bitwise.
            assert got["objectives"] == want["objectives"], (
                scenario,
                algorithm,
                position,
            )
            assert got["feasible"] == want["feasible"]


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_sharded_backend_matches_the_golden_fixture(scenario):
    """The sharded shared-memory backend reproduces the committed fronts.

    Same fixtures, same exactness: worker-sharded column evaluation must be
    bitwise indistinguishable from the serial kernel that generated the
    golden files.
    """
    golden = json.loads((GOLDEN_DIR / f"fronts_{scenario}.json").read_text())
    for algorithm, run in (
        ("exhaustive", lambda p: ExhaustiveSearch(p).run()),
        ("nsga2", lambda p: Nsga2(p, NSGA2_SETTINGS).run()),
    ):
        with EvaluationEngine(backend="sharded", max_workers=2) as engine:
            front = run(SCENARIOS[scenario](engine))
            expected = golden[algorithm]
            assert len(front) == len(expected), (scenario, algorithm)
            for position, (design, want) in enumerate(zip(front, expected)):
                assert list(design.genotype) == want["genotype"], (
                    scenario,
                    algorithm,
                    position,
                )
                assert list(design.objectives) == want["objectives"], (
                    scenario,
                    algorithm,
                    position,
                )
                assert design.feasible == want["feasible"]
            assert engine.stats.sharded_designs > 0


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("columnar", [False, True])
def test_columnar_sweep_matches_the_golden_fixture(scenario, columnar):
    """Both exhaustive sweep paths reproduce the committed front exactly.

    The columnar path prunes on raw objective columns and materialises only
    the survivors; the object path materialises every chunk.  Same fixture,
    same exactness — membership and ordering — for both, which pins the
    columnar seam against the committed artifacts.
    """
    golden = json.loads((GOLDEN_DIR / f"fronts_{scenario}.json").read_text())
    problem = SCENARIOS[scenario]()
    front = ExhaustiveSearch(problem, columnar=columnar).run()
    expected = golden["exhaustive"]
    assert len(front) == len(expected), (scenario, columnar)
    for position, (design, want) in enumerate(zip(front, expected)):
        assert list(design.genotype) == want["genotype"], (scenario, position)
        assert list(design.objectives) == want["objectives"], (scenario, position)
        assert design.feasible == want["feasible"]
    if columnar:
        # Lazy materialisation: only front designs became objects (the
        # constructor's all-zeros probe is already memoised, so it would be
        # served, not rebuilt, if it ever landed on a front).
        probe = tuple(0 for _ in range(len(problem.space)))
        assert problem.engine.stats.designs_materialised == sum(
            1 for design in front if design.genotype != probe
        )


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_sharded_columnar_sweep_matches_the_golden_fixture(scenario):
    """Columnar sweep over the sharded backend: same committed front."""
    golden = json.loads((GOLDEN_DIR / f"fronts_{scenario}.json").read_text())
    with EvaluationEngine(backend="sharded", max_workers=2) as engine:
        problem = SCENARIOS[scenario](engine)
        front = ExhaustiveSearch(problem, columnar=True).run()
        expected = golden["exhaustive"]
        assert len(front) == len(expected), scenario
        for position, (design, want) in enumerate(zip(front, expected)):
            assert list(design.genotype) == want["genotype"], (scenario, position)
            assert list(design.objectives) == want["objectives"], (
                scenario,
                position,
            )
            assert design.feasible == want["feasible"]
        assert engine.stats.sharded_designs > 0
        probe = tuple(0 for _ in range(len(problem.space)))
        assert engine.stats.designs_materialised == sum(
            1 for design in front if design.genotype != probe
        )


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("skyline", [False, True])
def test_skyline_toggle_reproduces_the_golden_fixture(scenario, skyline):
    """The committed fixtures hold with the skyline kernels on *and* off.

    The fixtures were generated before the sort-based pruning kernels
    existed; reproducing them with either kernel family proves the new
    dispatch is a bitwise drop-in — the fixtures never need regeneration.
    """
    golden = json.loads((GOLDEN_DIR / f"fronts_{scenario}.json").read_text())
    with use_skyline(skyline):
        computed = compute_fronts(scenario)
    for algorithm in sorted(golden):
        expected = golden[algorithm]
        actual = computed[algorithm]
        assert len(actual) == len(expected), (scenario, algorithm, skyline)
        for position, (want, got) in enumerate(zip(expected, actual)):
            assert got["genotype"] == want["genotype"], (
                scenario,
                algorithm,
                skyline,
                position,
            )
            assert got["objectives"] == want["objectives"], (
                scenario,
                algorithm,
                skyline,
                position,
            )
            assert got["feasible"] == want["feasible"]


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_explicit_backend_seam_matches_the_golden_fixture(scenario):
    """Kernels compiled through an explicitly named array backend (the
    seam's non-default entry point) reproduce the committed fronts —
    membership and ordering — proving the seam is a bitwise drop-in; the
    fixtures predate it and never need regeneration."""
    golden = json.loads((GOLDEN_DIR / f"fronts_{scenario}.json").read_text())
    problem = SCENARIOS[scenario](array_backend="numpy")
    assert problem.engine.stats.array_backend == "numpy"
    front = ExhaustiveSearch(problem).run()
    expected = golden["exhaustive"]
    assert len(front) == len(expected), scenario
    for position, (design, want) in enumerate(zip(front, expected)):
        assert list(design.genotype) == want["genotype"], (scenario, position)
        assert list(design.objectives) == want["objectives"], (
            scenario,
            position,
        )
        assert design.feasible == want["feasible"]


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_golden_fronts_are_nonempty_and_feasible(scenario):
    golden = json.loads((GOLDEN_DIR / f"fronts_{scenario}.json").read_text())
    for algorithm, front in golden.items():
        assert front, (scenario, algorithm)
        assert all(design["feasible"] for design in front), (scenario, algorithm)


def main() -> None:
    """Regenerate the committed fixtures (intentional model changes only)."""
    GOLDEN_DIR.mkdir(exist_ok=True)
    for scenario in sorted(SCENARIOS):
        path = GOLDEN_DIR / f"fronts_{scenario}.json"
        path.write_text(json.dumps(compute_fronts(scenario), indent=2) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
