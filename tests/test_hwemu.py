"""Tests of the hardware emulator (the measurement-bench substitute)."""

from __future__ import annotations

import pytest

from repro.compression.cycle_counts import cs_cycle_count, cycles_per_second
from repro.hwemu.adc_frontend import AdcFrontEndEmulator
from repro.hwemu.mcu import McuEmulator
from repro.hwemu.measurement import MeasurementCampaign, measure_prd
from repro.hwemu.node import ShimmerNodeEmulator
from repro.hwemu.radio import RadioEmulator
from repro.hwemu.sram import SramEmulator
from repro.shimmer.platform import ShimmerNodeConfig


class TestMcuEmulator:
    def test_workload_that_fits_is_schedulable(self):
        emulator = McuEmulator()
        budget = cycles_per_second(cs_cycle_count(), 256, 250.0)
        activity = emulator.run(budget, 8e6)
        assert activity.schedulable
        assert 0.0 < activity.busy_fraction < 1.0

    def test_overload_is_flagged(self):
        emulator = McuEmulator()
        budget = cycles_per_second(cs_cycle_count(), 256, 250.0)
        activity = emulator.run(budget.scaled(30.0), 1e6)
        assert not activity.schedulable
        assert activity.busy_fraction > 1.0

    def test_sleep_floor_is_included(self):
        emulator = McuEmulator()
        budget = cycles_per_second(cs_cycle_count(), 256, 250.0).scaled(1e-6)
        activity = emulator.run(budget, 8e6)
        assert activity.average_power_w >= emulator.parameters.sleep_power_w * 0.9

    def test_nonlinearity_increases_power_with_frequency(self):
        emulator = McuEmulator()
        assert emulator.active_power_w(8e6) > 8 * (
            emulator.active_power_w(1e6) - emulator.parameters.alpha_uc0_w
        )

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            McuEmulator().run(cycles_per_second(cs_cycle_count(), 256, 250.0), 0.0)


class TestRadioEmulator:
    def test_radio_time_scales_with_output_stream(self, mac_config):
        emulator = RadioEmulator()
        low = emulator.run(60.0, mac_config)
        high = emulator.run(140.0, mac_config)
        assert high.tx_time_s > low.tx_time_s
        assert high.average_power_w > low.average_power_w

    def test_idle_network_still_listens_to_beacons(self, mac_config):
        activity = RadioEmulator().run(0.0, mac_config)
        assert activity.tx_time_s == 0.0
        assert activity.rx_time_s > 0.0

    def test_negative_stream_rejected(self, mac_config):
        with pytest.raises(ValueError):
            RadioEmulator().run(-1.0, mac_config)


class TestFrontEndAndSram:
    def test_adc_power_grows_with_sampling_rate(self):
        emulator = AdcFrontEndEmulator()
        assert emulator.average_power_w(500.0) > emulator.average_power_w(250.0)

    def test_sram_power_grows_with_accesses(self):
        emulator = SramEmulator()
        assert emulator.average_power_w(50_000, 2_000) > emulator.average_power_w(
            5_000, 2_000
        )

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            AdcFrontEndEmulator().average_power_w(-1.0)
        with pytest.raises(ValueError):
            SramEmulator().average_power_w(-1.0, 100.0)


class TestNodeEmulator:
    def test_breakdown_sums_to_total(self, emulator, mac_config, default_node_config):
        measurement = emulator.measure("cs", default_node_config, mac_config)
        assert measurement.total_w == pytest.approx(
            measurement.sensor_w
            + measurement.microcontroller_w
            + measurement.memory_w
            + measurement.radio_w
        )

    def test_dwt_at_1mhz_is_infeasible(self, emulator, mac_config):
        measurement = emulator.measure(
            "dwt", ShimmerNodeConfig(0.3, 1e6), mac_config
        )
        assert not measurement.feasible
        assert measurement.duty_cycle > 1.0

    def test_energy_grows_with_compression_ratio(self, emulator, mac_config):
        low = emulator.measure("cs", ShimmerNodeConfig(0.17, 8e6), mac_config)
        high = emulator.measure("cs", ShimmerNodeConfig(0.38, 8e6), mac_config)
        assert high.total_w > low.total_w

    def test_unknown_application_rejected(self, emulator, mac_config, default_node_config):
        with pytest.raises(ValueError):
            emulator.measure("jpeg", default_node_config, mac_config)


class TestMeasurementCampaign:
    def test_energy_sweep_size(self, mac_config):
        campaign = MeasurementCampaign(mac_config=mac_config)
        measurements = campaign.measure_energy_sweep("cs", [0.2, 0.3], [1e6, 8e6])
        assert len(measurements) == 4

    def test_prd_measurement_is_deterministic(self):
        first = measure_prd("dwt", 0.3, duration_s=2.0, seed=9)
        second = measure_prd("dwt", 0.3, duration_s=2.0, seed=9)
        assert first == pytest.approx(second)

    def test_prd_sweep_returns_pairs(self):
        campaign = MeasurementCampaign()
        sweep = campaign.measure_prd_sweep("dwt", [0.2, 0.35], duration_s=2.0)
        assert [ratio for ratio, _ in sweep] == [0.2, 0.35]
        assert all(value > 0 for _, value in sweep)

    def test_invalid_application_rejected(self):
        with pytest.raises(ValueError):
            measure_prd("mp3", 0.3)
