"""Cross-cutting integration tests: analytical model versus emulated hardware.

These tests exercise the central claim of the paper outside the curated
Figure 3 sweep: over a broad range of feasible configurations, the analytical
model tracks the component-level emulation within a small relative error.
"""

from __future__ import annotations

import itertools

import pytest

from repro.experiments.fig3_node_energy import estimate_node_energy
from repro.mac802154.config import Ieee802154MacConfig
from repro.shimmer.platform import ShimmerNodeConfig


@pytest.mark.parametrize("application", ["dwt", "cs"])
@pytest.mark.parametrize("payload_bytes", [50, 80, 114])
def test_model_matches_emulator_across_mac_configurations(
    emulator, application, payload_bytes
):
    mac_config = Ieee802154MacConfig(payload_bytes=payload_bytes, superframe_order=4, beacon_order=5)
    for ratio, frequency in itertools.product((0.2, 0.35), (4e6, 8e6)):
        node_config = ShimmerNodeConfig(ratio, frequency)
        measured = emulator.measure(application, node_config, mac_config)
        estimated_w, _, schedulable = estimate_node_energy(
            application, node_config, mac_config
        )
        if not (measured.feasible and schedulable):
            continue
        error = abs(estimated_w - measured.total_w) / measured.total_w
        assert error < 0.03


def test_model_and_emulator_agree_on_schedulability(emulator, mac_config):
    for application, frequency in itertools.product(("dwt", "cs"), (1e6, 2e6, 4e6, 8e6)):
        node_config = ShimmerNodeConfig(0.3, frequency)
        measured = emulator.measure(application, node_config, mac_config)
        _, _, schedulable = estimate_node_energy(application, node_config, mac_config)
        assert measured.feasible == schedulable


def test_component_breakdown_is_consistent(emulator, mac_config, default_node_config):
    """The per-component split of model and emulator tells the same story."""
    measured = emulator.measure("dwt", default_node_config, mac_config)
    # The microcontroller dominates the DWT node, the radio is a minor
    # contributor, exactly as in the analytical breakdown.
    assert measured.microcontroller_w > measured.radio_w
    assert measured.sensor_w > measured.memory_w
