"""Tests of the IEEE 802.15.4 MAC instantiation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mac802154.config import Ieee802154MacConfig
from repro.mac802154.constants import ACK_BYTES, MAC_OVERHEAD_BYTES, MAX_GTS_SLOTS
from repro.mac802154.csma import SlottedCsmaModel
from repro.mac802154.gts import GTSDescriptor, allocate_gts_descriptors
from repro.mac802154.model import BeaconEnabledMacModel
from repro.mac802154.superframe import (
    BASE_SUPERFRAME_DURATION_S,
    beacon_interval_s,
    duty_ratio,
    slot_duration_s,
    superframe_duration_s,
    validate_orders,
)


class TestSuperframe:
    def test_base_duration_is_15_36_ms(self):
        assert BASE_SUPERFRAME_DURATION_S == pytest.approx(15.36e-3)

    def test_scaling_with_orders(self):
        assert superframe_duration_s(4) == pytest.approx(15.36e-3 * 16)
        assert beacon_interval_s(6) == pytest.approx(15.36e-3 * 64)
        assert slot_duration_s(4) == pytest.approx(15.36e-3)

    def test_duty_ratio(self):
        assert duty_ratio(4, 6) == pytest.approx(0.25)
        assert duty_ratio(4, 4) == pytest.approx(1.0)

    def test_invalid_orders_rejected(self):
        with pytest.raises(ValueError):
            validate_orders(5, 4)
        with pytest.raises(ValueError):
            validate_orders(-1, 4)
        with pytest.raises(ValueError):
            validate_orders(3, 15)


class TestMacConfig:
    def test_derived_quantities(self):
        config = Ieee802154MacConfig(80, 4, 6)
        assert config.slot_duration_s == pytest.approx(config.superframe_duration_s / 16)
        assert config.superframes_per_second == pytest.approx(1.0 / config.beacon_interval_s)

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValueError):
            Ieee802154MacConfig(payload_bytes=0)
        with pytest.raises(ValueError):
            Ieee802154MacConfig(payload_bytes=200)

    def test_invalid_orders_rejected(self):
        with pytest.raises(ValueError):
            Ieee802154MacConfig(80, 6, 4)


class TestBeaconEnabledMacModel:
    def test_data_overhead_follows_section_4_2(self, mac_model, mac_config):
        phi_out = 120.0
        quantities = mac_model.per_node_quantities(phi_out, mac_config)
        assert quantities.data_overhead_bytes_per_second == pytest.approx(
            MAC_OVERHEAD_BYTES * phi_out / mac_config.payload_bytes
        )
        assert quantities.control_node_to_coordinator_bytes_per_second == 0.0

    def test_control_overhead_includes_acks_and_beacons(self, mac_model, mac_config):
        phi_out = 120.0
        quantities = mac_model.per_node_quantities(phi_out, mac_config)
        expected = (
            ACK_BYTES * phi_out / mac_config.payload_bytes
            + mac_config.beacon_bytes / mac_config.beacon_interval_s
        )
        assert quantities.control_coordinator_to_node_bytes_per_second == pytest.approx(
            expected
        )

    def test_max_assignable_time_is_7_16_sd_over_bi(self, mac_model, mac_config):
        expected = (7 / 16) * mac_config.superframe_duration_s / mac_config.beacon_interval_s
        assert mac_model.max_assignable_time_per_second(mac_config) == pytest.approx(expected)
        assert mac_model.control_time_per_second(mac_config) == pytest.approx(1 - expected)

    def test_base_time_unit_is_one_slot_per_beacon_interval(self, mac_model, mac_config):
        assert mac_model.base_time_unit_s(mac_config) == pytest.approx(
            mac_config.slot_duration_s / mac_config.beacon_interval_s
        )

    def test_worst_case_delays_match_equation_9(self, mac_model, mac_config):
        slot_counts = [1, 1, 2]
        delays = mac_model.worst_case_delays(slot_counts, mac_config)
        control = mac_config.beacon_interval_s - 4 * mac_config.slot_duration_s
        assert delays[0] == pytest.approx(3 * mac_config.slot_duration_s + control)
        assert delays[2] == pytest.approx(2 * mac_config.slot_duration_s + control)

    def test_rejects_foreign_config_type(self, mac_model):
        with pytest.raises(TypeError):
            mac_model.per_node_quantities(100.0, mac_config="wrong")

    @settings(max_examples=40, deadline=None)
    @given(
        phi_out=st.floats(min_value=0.0, max_value=400.0),
        payload=st.integers(min_value=10, max_value=114),
    )
    def test_overheads_scale_linearly_with_output(self, phi_out, payload):
        model = BeaconEnabledMacModel()
        config = Ieee802154MacConfig(payload, 4, 6)
        quantities = model.per_node_quantities(phi_out, config)
        doubled = model.per_node_quantities(2 * phi_out, config)
        assert doubled.data_overhead_bytes_per_second == pytest.approx(
            2 * quantities.data_overhead_bytes_per_second
        )


class TestGts:
    def test_descriptors_fill_the_tail_of_the_superframe(self):
        descriptors = allocate_gts_descriptors([1, 2, 0, 1])
        assert [d.node_index for d in descriptors] == [0, 1, 3]
        assert descriptors[0].start_slot == 15
        assert descriptors[1].start_slot == 13
        assert descriptors[2].start_slot == 12
        assert all(d.end_slot <= 16 for d in descriptors)

    def test_capacity_limit_enforced(self):
        with pytest.raises(ValueError):
            allocate_gts_descriptors([4, 4])

    def test_descriptor_validation(self):
        with pytest.raises(ValueError):
            GTSDescriptor(node_index=0, start_slot=15, length_slots=3)
        with pytest.raises(ValueError):
            GTSDescriptor(node_index=-1, start_slot=10, length_slots=1)

    @settings(max_examples=50, deadline=None)
    @given(
        counts=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=6)
    )
    def test_allocations_never_overlap(self, counts):
        if sum(counts) > MAX_GTS_SLOTS:
            with pytest.raises(ValueError):
                allocate_gts_descriptors(counts)
            return
        descriptors = allocate_gts_descriptors(counts)
        occupied: set[int] = set()
        for descriptor in descriptors:
            slots = set(range(descriptor.start_slot, descriptor.end_slot))
            assert not (slots & occupied)
            occupied |= slots


class TestCsma:
    def test_estimate_is_bounded_by_cap_share(self, mac_config):
        model = SlottedCsmaModel()
        estimate = model.estimate(6, 120.0, mac_config)
        assert 0.0 <= estimate.successful_time_per_second_s
        assert estimate.successful_time_per_second_s <= model.cap_time_per_second(mac_config)
        assert 0.0 <= estimate.success_probability <= 1.0

    def test_more_nodes_lower_success_probability(self, mac_config):
        model = SlottedCsmaModel()
        few = model.estimate(2, 120.0, mac_config)
        many = model.estimate(12, 120.0, mac_config)
        assert many.success_probability <= few.success_probability

    def test_share_never_exceeds_demand(self, mac_config):
        model = SlottedCsmaModel()
        estimate = model.estimate(3, 40.0, mac_config)
        demand = 40.0 / mac_config.payload_bytes * model.frame_time_s(mac_config)
        assert estimate.successful_time_per_second_s <= demand + 1e-12

    def test_invalid_arguments_rejected(self, mac_config):
        model = SlottedCsmaModel()
        with pytest.raises(ValueError):
            model.estimate(0, 100.0, mac_config)
        with pytest.raises(ValueError):
            model.estimate(3, -1.0, mac_config)
        with pytest.raises(ValueError):
            SlottedCsmaModel(macMinBE=5, macMaxBE=3)
