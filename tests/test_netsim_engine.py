"""Tests of the discrete-event engine and of the basic simulator components."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.engine import Simulator
from repro.netsim.packet import Packet, PacketKind
from repro.netsim.radio import RadioState, SimulatedRadio
from repro.netsim.stats import DelayStats, NetworkStats
from repro.netsim.traffic import PoissonTrafficSource, UniformRateTrafficSource


class TestSimulator:
    def test_events_run_in_chronological_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule_at(2.0, lambda: order.append("late"))
        simulator.schedule_at(1.0, lambda: order.append("early"))
        simulator.schedule_at(1.5, lambda: order.append("middle"))
        simulator.run(until=3.0)
        assert order == ["early", "middle", "late"]

    def test_simultaneous_events_preserve_scheduling_order(self):
        simulator = Simulator()
        order = []
        simulator.schedule_at(1.0, lambda: order.append("first"))
        simulator.schedule_at(1.0, lambda: order.append("second"))
        simulator.run(until=2.0)
        assert order == ["first", "second"]

    def test_run_until_stops_at_the_horizon(self):
        simulator = Simulator()
        fired = []
        simulator.schedule_at(5.0, lambda: fired.append(True))
        simulator.run(until=4.0)
        assert not fired
        assert simulator.now == pytest.approx(4.0)
        simulator.run(until=6.0)
        assert fired

    def test_events_can_schedule_further_events(self):
        simulator = Simulator()
        ticks = []

        def tick():
            ticks.append(simulator.now)
            if len(ticks) < 5:
                simulator.schedule_after(1.0, tick)

        simulator.schedule_at(0.0, tick)
        simulator.run(until=10.0)
        assert ticks == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_cancelled_events_do_not_fire(self):
        simulator = Simulator()
        fired = []
        event = simulator.schedule_at(1.0, lambda: fired.append(True))
        simulator.cancel(event)
        simulator.run(until=2.0)
        assert not fired

    def test_scheduling_in_the_past_rejected(self):
        simulator = Simulator()
        simulator.schedule_at(1.0, lambda: None)
        simulator.run(until=2.0)
        with pytest.raises(ValueError):
            simulator.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            simulator.schedule_after(-1.0, lambda: None)

    @settings(max_examples=30, deadline=None)
    @given(times=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30))
    def test_dispatch_order_is_sorted_for_any_schedule(self, times):
        simulator = Simulator()
        seen = []
        for time in times:
            simulator.schedule_at(time, lambda t=time: seen.append(t))
        simulator.run(until=101.0)
        assert seen == sorted(times)


class TestPacket:
    def test_airtime(self):
        packet = Packet.data("n", "c", payload_bytes=80, created_at=0.0, enqueued_at=0.0)
        expected = 8.0 * (80 + 13 + 6) / 250_000.0
        assert packet.airtime_s(250_000.0) == pytest.approx(expected)

    def test_factories_set_the_kind(self):
        assert Packet.beacon("c", 25, 0.0).kind is PacketKind.BEACON
        assert Packet.ack("c", "n", 0.0).kind is PacketKind.ACK
        assert Packet.data("n", "c", 10, 0.0, 0.0).kind is PacketKind.DATA

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            Packet(PacketKind.DATA, "a", "b", payload_bytes=-1)


class TestRadioStateMachine:
    def test_time_accounting(self):
        radio = SimulatedRadio()
        radio.set_state(RadioState.TX, now=1.0)
        radio.set_state(RadioState.RX, now=1.5)
        radio.set_state(RadioState.SLEEP, now=2.5)
        radio.finalize(now=3.0)
        assert radio.tx_time_s == pytest.approx(0.5)
        assert radio.rx_time_s == pytest.approx(1.0)
        assert radio.time_in_state_s(RadioState.SLEEP) == pytest.approx(1.5)

    def test_energy_reflects_state_powers(self):
        radio = SimulatedRadio()
        radio.set_state(RadioState.TX, now=0.0)
        radio.finalize(now=1.0)
        assert radio.energy_j() == pytest.approx(radio.parameters.tx_power_w)

    def test_non_chronological_updates_rejected(self):
        radio = SimulatedRadio()
        radio.set_state(RadioState.RX, now=2.0)
        with pytest.raises(ValueError):
            radio.set_state(RadioState.TX, now=1.0)


class TestTrafficSources:
    def test_uniform_interarrival(self):
        source = UniformRateTrafficSource(112.5, 80)
        assert source.next_interarrival_s() == pytest.approx(80 / 112.5)

    def test_poisson_mean_interarrival(self):
        source = PoissonTrafficSource(112.5, 80, seed=0)
        samples = [source.next_interarrival_s() for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(80 / 112.5, rel=0.1)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            UniformRateTrafficSource(0.0, 80)
        with pytest.raises(ValueError):
            UniformRateTrafficSource(100.0, 0)


class TestStats:
    def test_delay_statistics(self):
        stats = DelayStats()
        for value in (0.1, 0.2, 0.3):
            stats.add(value)
        assert stats.count == 3
        assert stats.mean_s == pytest.approx(0.2)
        assert stats.max_s == pytest.approx(0.3)
        assert stats.min_s == pytest.approx(0.1)
        assert stats.percentile_s(50) == pytest.approx(0.2)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            DelayStats().add(-0.1)

    def test_network_stats_pooling(self):
        network = NetworkStats()
        network.node("a").delays.add(0.1)
        network.node("b").delays.add(0.3)
        assert network.all_delays.count == 2
        assert network.mean_delays_s()["b"] == pytest.approx(0.3)
