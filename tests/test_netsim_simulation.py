"""Integration tests of the packet-level star-network simulation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mac802154.config import Ieee802154MacConfig
from repro.mac802154.model import BeaconEnabledMacModel
from repro.netsim.channel import WirelessChannel
from repro.netsim.engine import Simulator
from repro.netsim.network import StarNetworkScenario
from repro.netsim.packet import Packet


@pytest.fixture(scope="module")
def sim_mac_config():
    return Ieee802154MacConfig(payload_bytes=80, superframe_order=4, beacon_order=4)


class TestWirelessChannel:
    def test_unicast_delivery(self):
        simulator = Simulator()
        channel = WirelessChannel(simulator)
        received = []

        class Device:
            def __init__(self, name):
                self.name = name

            def on_receive(self, packet):
                received.append((self.name, packet.sequence, simulator.now))

        sender, receiver = Device("a"), Device("b")
        channel.register(sender)
        channel.register(receiver)
        packet = Packet.data("a", "b", 80, 0.0, 0.0)
        airtime = channel.transmit(packet)
        simulator.run(until=1.0)
        assert len(received) == 1
        assert received[0][0] == "b"
        assert received[0][2] == pytest.approx(airtime)

    def test_broadcast_reaches_everyone_but_the_sender(self):
        simulator = Simulator()
        channel = WirelessChannel(simulator)
        received = []

        class Device:
            def __init__(self, name):
                self.name = name

            def on_receive(self, packet):
                received.append(self.name)

        for name in ("coordinator", "n1", "n2"):
            channel.register(Device(name))
        channel.transmit(Packet.beacon("coordinator", 25, 0.0))
        simulator.run(until=1.0)
        assert sorted(received) == ["n1", "n2"]

    def test_lossy_channel_drops_frames(self):
        simulator = Simulator()
        channel = WirelessChannel(simulator, packet_error_rate=0.5, seed=0)
        delivered = []

        class Device:
            def __init__(self, name):
                self.name = name

            def on_receive(self, packet):
                delivered.append(packet.sequence)

        channel.register(Device("a"))
        channel.register(Device("b"))
        for _ in range(200):
            channel.transmit(Packet.data("a", "b", 10, 0.0, 0.0))
        simulator.run(until=10.0)
        assert 0 < len(delivered) < 200
        assert channel.frames_dropped > 0

    def test_duplicate_registration_rejected(self):
        simulator = Simulator()
        channel = WirelessChannel(simulator)

        class Device:
            name = "x"

            def on_receive(self, packet):
                pass

        channel.register(Device())
        with pytest.raises(ValueError):
            channel.register(Device())


class TestStarNetworkScenario:
    def test_all_generated_traffic_is_eventually_delivered(self, sim_mac_config):
        scenario = StarNetworkScenario(
            [112.5, 112.5, 112.5], sim_mac_config, duration_s=30.0
        )
        result = scenario.run()
        for index in range(3):
            stats = result.stats.nodes[f"node-{index}"]
            assert stats.packets_delivered > 0
            # Allow a small in-flight queue at the end of the simulation.
            assert stats.packets_delivered >= stats.packets_generated - 3
            assert stats.delivery_ratio > 0.8

    def test_simulated_mean_delay_respects_the_model_bound(self, sim_mac_config):
        rates = [0.3 * 375.0] * 4
        scenario = StarNetworkScenario(rates, sim_mac_config, duration_s=40.0)
        result = scenario.run()
        bounds = BeaconEnabledMacModel().worst_case_delays(
            scenario.slot_counts, sim_mac_config
        )
        for index in range(4):
            mean_delay = result.mean_delays_s[f"node-{index}"]
            assert mean_delay <= bounds[index] + 1e-9

    def test_delay_grows_with_beacon_order(self):
        rates = [0.3 * 375.0] * 3
        fast = StarNetworkScenario(
            rates, Ieee802154MacConfig(80, 3, 3), duration_s=30.0
        ).run()
        slow = StarNetworkScenario(
            rates, Ieee802154MacConfig(80, 4, 5), duration_s=30.0
        ).run()
        assert (
            np.mean(list(slow.mean_delays_s.values()))
            > np.mean(list(fast.mean_delays_s.values()))
        )

    def test_explicit_slot_counts_are_used(self, sim_mac_config):
        scenario = StarNetworkScenario(
            [112.5, 112.5], sim_mac_config, slot_counts=[2, 1], duration_s=10.0
        )
        assert scenario.slot_counts == (2, 1)

    def test_radio_energy_accounting_is_positive(self, sim_mac_config):
        result = StarNetworkScenario(
            [112.5, 112.5], sim_mac_config, duration_s=20.0
        ).run()
        for stats in result.stats.nodes.values():
            assert stats.radio_energy_j > 0.0
            assert stats.tx_time_s > 0.0

    def test_poisson_traffic_also_flows(self, sim_mac_config):
        result = StarNetworkScenario(
            [112.5, 112.5], sim_mac_config, duration_s=30.0, traffic="poisson", seed=2
        ).run()
        assert result.stats.total_packets_delivered > 0

    def test_beacons_are_sent_once_per_beacon_interval(self, sim_mac_config):
        duration = 20.0
        result = StarNetworkScenario([112.5], sim_mac_config, duration_s=duration).run()
        expected = duration / sim_mac_config.beacon_interval_s
        assert result.stats.beacons_sent == pytest.approx(expected, abs=2)

    def test_invalid_arguments_rejected(self, sim_mac_config):
        with pytest.raises(ValueError):
            StarNetworkScenario([], sim_mac_config)
        with pytest.raises(ValueError):
            StarNetworkScenario([100.0], sim_mac_config, duration_s=0.0)
        with pytest.raises(ValueError):
            StarNetworkScenario([100.0], sim_mac_config, traffic="bursty")
        with pytest.raises(ValueError):
            StarNetworkScenario([100.0, 100.0], sim_mac_config, slot_counts=[1])
