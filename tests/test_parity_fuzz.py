"""Randomized differential fuzzing of the scalar vs vectorized paths.

Seeded random genotype batches are pushed through both evaluation paths for
both MAC models (beacon-enabled GTS and unslotted CSMA/CA) and both
objective sets (full three-metric and energy/delay baseline), asserting
*exact* equality of every objective column, the feasibility flags and the
violation counts.  This is the differential harness locking down the seam's
core invariant — vectorization is semantically invisible, bit for bit — on
inputs nobody hand-picked.  The sharded shared-memory backend is fuzzed
through the same harness: worker-computed columns reassembled across process
boundaries must equal the scalar path exactly as well.  The columnar result
path (``evaluate_batch_columns`` + lazy materialisation) is fuzzed against
the same scalar reference: raw column rows, their materialised designs, and
the scalar-fallback columns must all agree bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dse.pareto import pareto_front_indices, use_skyline
from repro.dse.problem import WbsnDseProblem, csma_mac_parameterisation
from repro.engine import (
    EvaluationEngine,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    inject_faults,
)
from repro.experiments.casestudy import (
    build_baseline_evaluator,
    build_case_study_evaluator,
    build_csma_baseline_evaluator,
    build_csma_case_study_evaluator,
)

#: (mac family, baseline objectives?) -> problem factory matrix under fuzz.
SCENARIOS = {
    "beacon-full": (build_case_study_evaluator, None),
    "beacon-baseline": (build_baseline_evaluator, None),
    "csma-full": (build_csma_case_study_evaluator, csma_mac_parameterisation),
    "csma-baseline": (build_csma_baseline_evaluator, csma_mac_parameterisation),
}

FUZZ_SEEDS = (0, 1, 2, 3)

#: Batch size per seed; large enough to hit every MAC configuration and a
#: healthy mix of feasible and infeasible candidates.
BATCH = 96


def build_pair(scenario: str) -> tuple[WbsnDseProblem, WbsnDseProblem]:
    """Independent (vectorized, scalar) problems over the same model."""
    build, mac_parameterisation = SCENARIOS[scenario]

    def problem(vectorized: bool) -> WbsnDseProblem:
        kwargs = {}
        if mac_parameterisation is not None:
            kwargs["mac_parameterisation"] = mac_parameterisation()
        return WbsnDseProblem(
            build(),
            engine=EvaluationEngine(),
            vectorized=vectorized,
            **kwargs,
        )

    return problem(True), problem(False)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_random_batches_are_bit_identical(scenario, seed):
    vectorized, scalar = build_pair(scenario)
    assert vectorized.supports_vectorized
    rng = np.random.default_rng(seed)
    genotypes = [vectorized.space.random_genotype(rng) for _ in range(BATCH)]

    batch = vectorized.compute_designs_batch(genotypes)
    columns = vectorized.vectorized_kernel.evaluate_columns(
        vectorized.space.index_matrix(genotypes)
    )

    for row, (genotype, fast) in enumerate(zip(genotypes, batch)):
        slow = scalar.compute_design(genotype)
        # Every objective column, exactly — no tolerance.
        assert fast.objectives == slow.objectives, (scenario, seed, genotype)
        assert fast.feasible == slow.feasible, (scenario, seed, genotype)
        assert fast.genotype == slow.genotype
        # The raw kernel columns agree with the materialised designs and
        # with the scalar violation structure.
        assert tuple(columns.objectives[row].tolist()) == fast.objectives
        assert bool(columns.feasible[row]) == fast.feasible
        node_configs, mac_config = scalar.decode(genotype)
        evaluation = scalar.evaluator.evaluate(node_configs, mac_config)
        assert columns.violation_counts[row] == len(evaluation.violations)


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_engine_batches_match_scalar_engine_batches(scenario):
    """End-to-end engine runs (caches on) agree design-for-design."""
    vectorized, scalar = build_pair(scenario)
    rng = np.random.default_rng(13)
    genotypes = [vectorized.space.random_genotype(rng) for _ in range(64)]
    # Duplicates exercise the dedup path on both sides.
    genotypes += genotypes[:16]
    fast = vectorized.evaluate_batch(genotypes)
    slow = scalar.evaluate_batch(genotypes)
    assert [d.objectives for d in fast] == [d.objectives for d in slow]
    assert [d.feasible for d in fast] == [d.feasible for d in slow]


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_sharded_batches_are_bit_identical(scenario):
    """Sharded worker columns, reassembled, equal the scalar path exactly."""
    build, mac_parameterisation = SCENARIOS[scenario]
    kwargs = {}
    if mac_parameterisation is not None:
        kwargs["mac_parameterisation"] = mac_parameterisation()
    scalar = WbsnDseProblem(
        build(), engine=EvaluationEngine(), vectorized=False, **kwargs
    )
    with EvaluationEngine(backend="sharded", max_workers=2) as engine:
        sharded = WbsnDseProblem(build(), engine=engine, **kwargs)
        rng = np.random.default_rng(FUZZ_SEEDS[0])
        genotypes = [sharded.space.random_genotype(rng) for _ in range(BATCH)]
        genotypes += genotypes[:16]  # duplicates exercise the dedup+mask path
        fast = sharded.evaluate_batch(genotypes)
        slow = scalar.evaluate_batch(genotypes)
        assert [d.objectives for d in fast] == [d.objectives for d in slow]
        assert [d.feasible for d in fast] == [d.feasible for d in slow]
        assert [d.genotype for d in fast] == [d.genotype for d in slow]
        # Every miss was computed by worker kernels — no scalar fallback.
        assert engine.stats.sharded_designs == engine.stats.vectorized_designs
        assert engine.stats.sharded_designs > 0


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_columnar_batches_are_bit_identical(scenario, seed):
    """Columnar result rows equal the scalar path exactly, row for row."""
    vectorized, scalar = build_pair(scenario)
    rng = np.random.default_rng(seed)
    genotypes = [vectorized.space.random_genotype(rng) for _ in range(BATCH)]
    genotypes += genotypes[:16]  # duplicates exercise the dedup+inverse path

    batch = vectorized.evaluate_batch_columns(genotypes)
    assert len(batch) == len(genotypes)
    for row, genotype in enumerate(genotypes):
        slow = scalar.compute_design(genotype)
        assert tuple(batch.objectives[row].tolist()) == slow.objectives, (
            scenario,
            seed,
            genotype,
        )
        assert bool(batch.feasible[row]) == slow.feasible
        assert int(batch.violation_counts[row]) == slow.violation_count
        assert tuple(batch.genotypes[row].tolist()) == slow.genotype
    # Materialised designs reproduce the rows they came from.
    designs = batch.materialise()
    assert [d.objectives for d in designs] == [
        tuple(row) for row in batch.objectives.tolist()
    ]
    assert [d.genotype for d in designs] == [
        tuple(row) for row in batch.genotypes.tolist()
    ]


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_scalar_fallback_columns_match_the_kernel_columns(scenario):
    """Kernel-less problems flatten per-design results into identical columns."""
    vectorized, scalar = build_pair(scenario)
    rng = np.random.default_rng(FUZZ_SEEDS[1])
    genotypes = [vectorized.space.random_genotype(rng) for _ in range(64)]
    fast = vectorized.evaluate_batch_columns(genotypes)
    slow = scalar.evaluate_batch_columns(genotypes)
    assert fast.objectives.tolist() == slow.objectives.tolist()
    assert fast.feasible.tolist() == slow.feasible.tolist()
    assert fast.violation_counts.tolist() == slow.violation_counts.tolist()
    assert fast.genotypes.tolist() == slow.genotypes.tolist()
    # The fallback really was scalar: no kernel work on the scalar side.
    assert scalar.engine.stats.vectorized_designs == 0
    assert vectorized.engine.stats.vectorized_designs > 0


@pytest.mark.parametrize("scenario", ["beacon-full", "csma-full"])
def test_sharded_columnar_batches_are_bit_identical(scenario):
    """Sharded worker columns on the columnar path equal the scalar path."""
    build, mac_parameterisation = SCENARIOS[scenario]
    kwargs = {}
    if mac_parameterisation is not None:
        kwargs["mac_parameterisation"] = mac_parameterisation()
    scalar = WbsnDseProblem(
        build(), engine=EvaluationEngine(), vectorized=False, **kwargs
    )
    with EvaluationEngine(backend="sharded", max_workers=2) as engine:
        sharded = WbsnDseProblem(build(), engine=engine, **kwargs)
        rng = np.random.default_rng(FUZZ_SEEDS[0])
        genotypes = [sharded.space.random_genotype(rng) for _ in range(BATCH)]
        batch = sharded.evaluate_batch_columns(genotypes)
        slow = scalar.evaluate_batch(genotypes)
        assert [tuple(row) for row in batch.objectives.tolist()] == [
            d.objectives for d in slow
        ]
        assert batch.feasible.tolist() == [d.feasible for d in slow]
        assert batch.violation_counts.tolist() == [
            d.violation_count for d in slow
        ]
        # Every miss was computed by worker kernels — no scalar fallback.
        assert engine.stats.sharded_designs == engine.stats.vectorized_designs
        assert engine.stats.sharded_designs > 0


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("backend", ["numpy", "module"])
def test_explicit_backend_batches_are_bit_identical(scenario, backend):
    """The array-backend seam is semantically invisible: kernels compiled
    through an explicitly named backend (or a namespace module handed in
    directly) equal the default-compiled kernels bit for bit, and the
    resolved backend name is surfaced in the engine stats."""
    import numpy

    build, mac_parameterisation = SCENARIOS[scenario]
    kwargs = {}
    if mac_parameterisation is not None:
        kwargs["mac_parameterisation"] = mac_parameterisation()
    default = WbsnDseProblem(build(), engine=EvaluationEngine(), **kwargs)
    explicit = WbsnDseProblem(
        build(),
        engine=EvaluationEngine(),
        array_backend="numpy" if backend == "numpy" else numpy,
        **kwargs,
    )
    assert explicit.vectorized_kernel.backend_name == "numpy"
    assert explicit.engine.stats.array_backend == "numpy"
    assert default.engine.stats.array_backend == "numpy"
    rng = np.random.default_rng(FUZZ_SEEDS[2])
    genotypes = [default.space.random_genotype(rng) for _ in range(BATCH)]
    want = default.evaluate_batch_columns(genotypes)
    got = explicit.evaluate_batch_columns(genotypes)
    assert got.objectives.tolist() == want.objectives.tolist()
    assert got.feasible.tolist() == want.feasible.tolist()
    assert got.violation_counts.tolist() == want.violation_counts.tolist()


@pytest.mark.parametrize("scenario", ["beacon-full", "csma-full"])
def test_pickled_kernel_rebinds_its_backend_and_stays_identical(scenario):
    """Kernels cross process boundaries by name, not by module: a pickle
    round trip drops the unpicklable namespace, re-resolves it from
    ``backend_name`` on load, and evaluates bit-identical columns."""
    import pickle

    vectorized, _ = build_pair(scenario)
    kernel = vectorized.vectorized_kernel
    clone = pickle.loads(pickle.dumps(kernel))
    assert clone.backend_name == kernel.backend_name == "numpy"
    rng = np.random.default_rng(FUZZ_SEEDS[1])
    genotypes = [vectorized.space.random_genotype(rng) for _ in range(48)]
    matrix = vectorized.space.index_matrix(genotypes)
    want = kernel.evaluate_columns(matrix)
    got = clone.evaluate_columns(matrix)
    assert got.objectives.tolist() == want.objectives.tolist()
    assert got.feasible.tolist() == want.feasible.tolist()
    assert got.violation_counts.tolist() == want.violation_counts.tolist()


def test_fuzz_exercises_both_feasibility_outcomes():
    """The seeded batches cover feasible and infeasible designs (meta-test)."""
    for scenario in sorted(SCENARIOS):
        vectorized, _ = build_pair(scenario)
        rng = np.random.default_rng(FUZZ_SEEDS[0])
        genotypes = [vectorized.space.random_genotype(rng) for _ in range(BATCH)]
        flags = {
            design.feasible
            for design in vectorized.compute_designs_batch(genotypes)
        }
        assert flags == {True, False}, scenario


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", FUZZ_SEEDS)
def test_skyline_fronts_match_blockwise_fronts(scenario, seed):
    """Front extraction over fuzzed objective rows is kernel-invariant:
    the sort-based skyline kernels and the blockwise dominance matrices
    pick the same rows in the same order, bit for bit."""
    vectorized, _ = build_pair(scenario)
    rng = np.random.default_rng(seed)
    genotypes = [vectorized.space.random_genotype(rng) for _ in range(BATCH)]
    batch = vectorized.evaluate_batch_columns(genotypes)
    pools = [batch.objectives, batch.objectives[batch.feasible]]
    for pool in pools:
        with use_skyline(True):
            skyline = pareto_front_indices(pool)
        with use_skyline(False):
            blockwise = pareto_front_indices(pool)
        assert skyline == blockwise, (scenario, seed)


@pytest.mark.parametrize("scenario", ["beacon-full", "csma-full"])
@pytest.mark.parametrize("action", ["raise", "kill"])
def test_fault_injected_sharded_batches_match_scalar(scenario, action):
    """Worker recovery is semantically invisible: a batch whose first shard
    submission crashed (escaped exception or SIGKILL'd worker) and was
    retried on a fresh pool equals the scalar path row for row."""
    build, mac_parameterisation = SCENARIOS[scenario]
    kwargs = {}
    if mac_parameterisation is not None:
        kwargs["mac_parameterisation"] = mac_parameterisation()
    scalar = WbsnDseProblem(
        build(), engine=EvaluationEngine(), vectorized=False, **kwargs
    )
    plan = FaultPlan([FaultSpec(site="shard", action=action, at=(0,))])
    with inject_faults(plan), EvaluationEngine(
        backend="sharded",
        max_workers=2,
        retry_policy=RetryPolicy(max_attempts=3, backoff_base_s=0.005),
    ) as engine:
        sharded = WbsnDseProblem(build(), engine=engine, **kwargs)
        before = engine.stats.snapshot()  # skip the constructor's probe
        rng = np.random.default_rng(FUZZ_SEEDS[3])
        genotypes = [sharded.space.random_genotype(rng) for _ in range(BATCH)]
        fast = sharded.evaluate_batch(genotypes)
        slow = scalar.evaluate_batch(genotypes)
        assert [d.objectives for d in fast] == [d.objectives for d in slow]
        assert [d.feasible for d in fast] == [d.feasible for d in slow]
        assert [d.genotype for d in fast] == [d.genotype for d in slow]
        # The counters reconcile with the injected failure: exactly one
        # observed pool failure, at least one batch re-dispatched, nothing
        # degraded, and — retries included — every miss still came out of
        # worker kernels, never the scalar fallback.
        stats = engine.stats.snapshot() - before
        assert stats.worker_failures == 1
        assert stats.batches_retried >= 1
        assert stats.degraded_batches == 0
        assert stats.retry_wait_seconds > 0
        assert stats.sharded_designs == stats.vectorized_designs
        assert stats.sharded_designs == stats.model_evaluations


@pytest.mark.parametrize("scenario", ["beacon-full", "csma-full"])
def test_worker_pruned_fronts_match_the_scalar_full_batch_front(scenario):
    """A worker-pruned columnar batch yields the exact front of the scalar
    full batch: every row the workers dropped had a surviving witness."""
    build, mac_parameterisation = SCENARIOS[scenario]
    kwargs = {}
    if mac_parameterisation is not None:
        kwargs["mac_parameterisation"] = mac_parameterisation()
    scalar = WbsnDseProblem(
        build(), engine=EvaluationEngine(), vectorized=False, **kwargs
    )
    with EvaluationEngine(backend="sharded", max_workers=2) as engine:
        sharded = WbsnDseProblem(build(), engine=engine, **kwargs)
        rng = np.random.default_rng(FUZZ_SEEDS[2])
        genotypes = [sharded.space.random_genotype(rng) for _ in range(BATCH)]
        pruned = sharded.evaluate_batch_columns(genotypes, prune_to_front=True)
        assert engine.stats.rows_pruned_in_workers > 0
        assert len(pruned) + engine.stats.rows_pruned_in_workers >= BATCH

    slow = scalar.evaluate_batch(genotypes)
    feasible = [d for d in slow if d.feasible] or slow
    front = pareto_front_indices([d.objectives for d in feasible])
    want = [(feasible[i].genotype, feasible[i].objectives) for i in front]

    rows = np.flatnonzero(pruned.feasible)
    pool = pruned.take(rows) if rows.size else pruned
    got_front = pool.take(pareto_front_indices(pool.objectives))
    got = [
        (tuple(genotype), tuple(objectives))
        for genotype, objectives in zip(
            got_front.genotypes.tolist(), got_front.objectives.tolist()
        )
    ]
    assert got == want, scenario
