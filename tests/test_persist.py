"""Persistent cache tier: segment format, warm-start sweeps, fault injection.

Three layers are covered.  The *format* tests pin the on-disk segment
contract (framing, checksum, byte-determinism, projection, merge rules).
The *warm-start* tests are the tier's acceptance criteria: a sweep re-run
against a spilled segment — in the same process, through the runner, or in
a genuinely fresh process — must produce a front bitwise identical to the
cold run with **zero** model evaluations.  The *fault* tests drive the
``"cache-segment"`` mangle site and the ``"cache-segment-saved"`` fire site
of :mod:`repro.engine.faults`: a corrupted/truncated/foreign segment warns
(:class:`CacheTierWarning`) and cold-starts, and a SIGKILL during the spill
leaves no temporary file behind.

Problems are the small two-node/64-configuration spaces of the fault suite
(:mod:`test_faults`), so the file stays well inside the CI budget.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.core.baseline import EnergyDelayBaselineEvaluator
from repro.dse.exhaustive import ExhaustiveSearch
from repro.dse.problem import WbsnDseProblem
from repro.dse.runner import run_algorithm
from repro.engine import (
    CacheSegmentError,
    CacheTierWarning,
    EvaluationEngine,
    FaultPlan,
    FaultSpec,
    inject_faults,
    load_segment,
    load_segment_if_valid,
    prune_cache_dir,
    save_segment,
    segment_path,
)
from repro.engine.checkpoint import pack_blob
from repro.engine.persist import (
    SEGMENT_MAGIC,
    SEGMENT_SUFFIX,
    SEGMENT_VERSION,
    list_segments,
    remove_orphaned_tmp_siblings,
    spill_rows,
)
from repro.experiments.casestudy import build_case_study_evaluator

from test_faults import (
    NODE_DOMAINS,
    beacon_problem,
    front_signature,
    reference_front,
)

FP = bytes(range(32))
OTHER_FP = bytes(range(32, 64))
COMPONENTS = ("energy", "quality", "delay")

#: A small hand-written row set: {genotype key: (objectives, feasible, violations)}.
ROWS = {
    (1, 0): ((4.0, 5.0, 6.0), False, 2),
    (0, 1): ((1.0, 2.0, 3.0), True, 0),
    (0, 0): ((7.0, 8.0, 9.0), True, 0),
}


def column_arrays(rows, components=COMPONENTS):
    """Flatten a row mapping into ``save_segment``'s column arrays."""
    keys = list(rows)
    return dict(
        genotypes=np.asarray(keys, dtype=np.int64).reshape(len(keys), -1),
        objectives=np.asarray(
            [rows[key][0] for key in keys], dtype=np.float64
        ).reshape(len(keys), len(components)),
        feasible=np.asarray([rows[key][1] for key in keys], dtype=bool),
        violation_counts=np.asarray(
            [rows[key][2] for key in keys], dtype=np.int64
        ),
    )


def baseline_problem(engine: EvaluationEngine) -> WbsnDseProblem:
    """The two-node space under the (energy, delay) baseline evaluator.

    Same network model as :func:`test_faults.beacon_problem` — the two
    problems share one evaluation fingerprint and differ only in objective
    components, exactly like the Figure-5 pair.
    """
    return WbsnDseProblem(
        EnergyDelayBaselineEvaluator(
            build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
        ),
        **NODE_DOMAINS,
        payload_bytes=(60, 80),
        order_pairs=((4, 4), (4, 6)),
        engine=engine,
    )


def sweep(engine: EvaluationEngine, problem_factory=beacon_problem):
    """Exhaustive sweep on a problem bound to ``engine``, then close it."""
    with engine:
        return run_algorithm(
            ExhaustiveSearch(problem_factory(engine), chunk_size=16)
        )


def subprocess_env() -> dict[str, str]:
    """Environment for a fresh-process run: src and tests on PYTHONPATH."""
    env = dict(os.environ)
    here = os.path.dirname(os.path.abspath(__file__))
    src = os.path.join(os.path.dirname(here), "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, here, env.get("PYTHONPATH")) if p
    )
    return env


# --------------------------------------------------------------------------
# Segment format: atomic, versioned, checksummed, byte-deterministic.


class TestSegmentFormat:
    def test_roundtrip_sorts_rows_by_genotype(self, tmp_path):
        path = save_segment(
            tmp_path, fingerprint=FP, components=COMPONENTS, **column_arrays(ROWS)
        )
        assert path == segment_path(tmp_path, FP)
        loaded = load_segment(path)
        assert loaded.fingerprint == FP
        assert loaded.components == COMPONENTS
        assert len(loaded) == len(ROWS)
        assert loaded.rows() == ROWS
        # Rows are lexsorted by genotype regardless of insertion order.
        assert loaded.genotypes.tolist() == [[0, 0], [0, 1], [1, 0]]
        # The loaded arrays are read-only views into the file's memory map.
        with pytest.raises(ValueError):
            loaded.objectives[0, 0] = 0.0
        # Atomicity: no temporary file left behind.
        assert list(tmp_path.iterdir()) == [path]

    def test_equal_row_sets_produce_identical_bytes(self, tmp_path):
        reordered = dict(reversed(list(ROWS.items())))
        a = save_segment(
            tmp_path / "a", fingerprint=FP, components=COMPONENTS,
            **column_arrays(ROWS),
        )
        b = save_segment(
            tmp_path / "b", fingerprint=FP, components=COMPONENTS,
            **column_arrays(reordered),
        )
        assert a.read_bytes() == b.read_bytes()

    def test_rejects_mismatched_column_lengths(self, tmp_path):
        arrays = column_arrays(ROWS)
        arrays["feasible"] = arrays["feasible"][:1]
        with pytest.raises(ValueError, match="row count"):
            save_segment(
                tmp_path, fingerprint=FP, components=COMPONENTS, **arrays
            )

    def test_missing_file(self, tmp_path):
        with pytest.raises(CacheSegmentError, match="unreadable"):
            load_segment(tmp_path / "absent.wbsncache")
        # The warm-start loader treats a missing segment as a silent cold
        # start (first run against the cache directory), not a warning.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert (
                load_segment_if_valid(
                    tmp_path / "absent.wbsncache", fingerprint=FP
                )
                is None
            )

    def test_empty_file_is_truncated_not_a_crash(self, tmp_path):
        path = tmp_path / "empty.wbsncache"
        path.write_bytes(b"")
        with pytest.raises(CacheSegmentError, match="truncated"):
            load_segment(path)
        with pytest.warns(CacheTierWarning, match="truncated"):
            assert load_segment_if_valid(path, fingerprint=FP) is None

    def test_flipped_payload_byte_fails_the_checksum(self, tmp_path):
        path = save_segment(
            tmp_path, fingerprint=FP, components=COMPONENTS, **column_arrays(ROWS)
        )
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(CacheSegmentError, match="integrity"):
            load_segment(path)

    def test_foreign_magic_and_future_version(self, tmp_path):
        path = save_segment(
            tmp_path, fingerprint=FP, components=COMPONENTS, **column_arrays(ROWS)
        )
        blob = bytearray(path.read_bytes())
        mangled = bytearray(blob)
        mangled[0] ^= 0xFF
        path.write_bytes(bytes(mangled))
        with pytest.raises(CacheSegmentError, match="magic"):
            load_segment(path)
        future = SEGMENT_VERSION + 1
        blob[len(SEGMENT_MAGIC) : len(SEGMENT_MAGIC) + 4] = future.to_bytes(
            4, "little"
        )
        path.write_bytes(bytes(blob))
        with pytest.raises(CacheSegmentError, match="version"):
            load_segment(path)

    def test_unparseable_header_is_rejected(self, tmp_path):
        # A correctly framed blob whose payload is not a segment header.
        path = tmp_path / "junk.wbsncache"
        payload = (64).to_bytes(4, "little") + b"\xff" * 64
        path.write_bytes(pack_blob(SEGMENT_MAGIC, SEGMENT_VERSION, payload))
        with pytest.raises(CacheSegmentError, match="header"):
            load_segment(path)

    def test_fingerprint_mismatch_warns_and_cold_starts(self, tmp_path):
        path = save_segment(
            tmp_path, fingerprint=FP, components=COMPONENTS, **column_arrays(ROWS)
        )
        with pytest.warns(CacheTierWarning, match="fingerprint"):
            assert load_segment_if_valid(path, fingerprint=OTHER_FP) is None
        with pytest.warns(CacheTierWarning, match="fingerprint"):
            assert load_segment_if_valid(path, fingerprint=None) is None

    def test_projection_is_a_column_selection(self, tmp_path):
        path = save_segment(
            tmp_path, fingerprint=FP, components=COMPONENTS, **column_arrays(ROWS)
        )
        segment = load_segment(path)
        assert segment.project(COMPONENTS) is segment.objectives
        projected = segment.project(("energy", "delay"))
        np.testing.assert_array_equal(projected, segment.objectives[:, [0, 2]])
        reordered = segment.project(("delay", "energy"))
        np.testing.assert_array_equal(reordered, segment.objectives[:, [2, 0]])
        # Not a subset: a miss, never a guess.
        assert segment.project(("energy", "latency")) is None


class TestSpillMergeRules:
    def test_empty_rows_write_nothing(self, tmp_path):
        assert (
            spill_rows(tmp_path, fingerprint=FP, components=COMPONENTS, rows={})
            is None
        )
        assert not list(tmp_path.iterdir())

    def test_same_components_union_new_rows_win(self, tmp_path):
        spill_rows(tmp_path, fingerprint=FP, components=COMPONENTS, rows=ROWS)
        update = {
            (0, 1): ((9.0, 9.0, 9.0), True, 0),  # conflicting key
            (2, 2): ((0.5, 0.5, 0.5), True, 0),  # fresh key
        }
        path = spill_rows(
            tmp_path, fingerprint=FP, components=COMPONENTS, rows=update
        )
        merged = load_segment(path).rows()
        assert len(merged) == 4
        assert merged[(0, 1)] == update[(0, 1)]
        assert merged[(0, 0)] == ROWS[(0, 0)]

    def test_richer_spill_replaces_a_narrow_segment(self, tmp_path):
        narrow = {(0, 0): ((1.0, 3.0), True, 0)}
        spill_rows(
            tmp_path, fingerprint=FP, components=("energy", "delay"), rows=narrow
        )
        path = spill_rows(
            tmp_path, fingerprint=FP, components=COMPONENTS, rows=ROWS
        )
        segment = load_segment(path)
        assert segment.components == COMPONENTS
        # Narrow rows cannot be widened: they are dropped with the segment.
        assert segment.rows() == ROWS

    def test_narrower_spill_is_a_noop(self, tmp_path):
        spill_rows(tmp_path, fingerprint=FP, components=COMPONENTS, rows=ROWS)
        narrow = {(5, 5): ((1.0, 3.0), True, 0)}
        path = spill_rows(
            tmp_path, fingerprint=FP, components=("energy", "delay"), rows=narrow
        )
        segment = load_segment(path)
        assert segment.components == COMPONENTS
        assert segment.rows() == ROWS

    def test_incomparable_spill_is_a_noop(self, tmp_path):
        first = {(0, 0): ((1.0, 3.0), True, 0)}
        spill_rows(
            tmp_path, fingerprint=FP, components=("energy", "delay"), rows=first
        )
        other = {(1, 1): ((2.0, 4.0), True, 0)}
        path = spill_rows(
            tmp_path, fingerprint=FP, components=("energy", "quality"), rows=other
        )
        segment = load_segment(path)
        assert segment.components == ("energy", "delay")
        assert segment.rows() == first


# --------------------------------------------------------------------------
# Warm-start sweeps: bitwise-identical fronts, zero model evaluations.


class TestWarmStartSweeps:
    def test_warm_engine_reruns_without_model_evaluations(self, tmp_path):
        cold = sweep(EvaluationEngine(cache_dir=tmp_path))
        assert cold.model_evaluations > 0
        assert front_signature(cold.front) == reference_front("beacon")
        segments = list(tmp_path.iterdir())
        assert [p.suffix for p in segments] == [".wbsncache"]
        assert len(load_segment(segments[0])) == 64

        warm_engine = EvaluationEngine(cache_dir=tmp_path)
        warm = sweep(warm_engine)
        assert front_signature(warm.front) == front_signature(cold.front)
        # The acceptance criterion: the warm engine never touched the model
        # — not even for the problem's construction probe.
        assert warm_engine.stats.model_evaluations == 0
        assert warm_engine.stats.rows_loaded_from_disk == 64
        assert warm_engine.stats.persistent_cache_hits >= 64

    def test_runner_cache_dir_plumbs_the_tier(self, tmp_path):
        cold = run_algorithm(
            ExhaustiveSearch(beacon_problem(EvaluationEngine()), chunk_size=16),
            cache_dir=str(tmp_path),
        )
        assert cold.model_evaluations > 0
        assert list(tmp_path.glob("*.wbsncache"))
        warm = run_algorithm(
            ExhaustiveSearch(beacon_problem(EvaluationEngine()), chunk_size=16),
            cache_dir=str(tmp_path),
        )
        assert front_signature(warm.front) == front_signature(cold.front)
        assert warm.model_evaluations == 0
        # The construction probe (computed before the run, outside the tier)
        # is already memoised, so 63 of the 64 rows come off disk.
        assert warm.rows_loaded_from_disk == 63
        assert warm.persistent_cache_hits == 63

    def test_runner_rejects_engineless_problems(self):
        class EnginelessProblem:
            engine = None

        class Algorithm:
            problem = EnginelessProblem()

            def run(self):  # pragma: no cover - never reached
                return []

        with pytest.raises(TypeError, match="cache_dir"):
            run_algorithm(Algorithm(), cache_dir="anywhere")

    def test_cross_process_warm_start(self, tmp_path):
        # The cold sweep runs — and spills — in a genuinely fresh process;
        # this process then warm-starts from nothing but the segment file.
        script = textwrap.dedent(
            f"""
            from test_faults import beacon_problem
            from repro.dse.exhaustive import ExhaustiveSearch
            from repro.dse.runner import run_algorithm
            from repro.engine import EvaluationEngine

            engine = EvaluationEngine(cache_dir={str(tmp_path)!r})
            with engine:
                result = run_algorithm(
                    ExhaustiveSearch(beacon_problem(engine), chunk_size=16)
                )
            assert result.model_evaluations > 0
            """
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env=subprocess_env(),
            capture_output=True,
            text=True,
        )
        assert completed.returncode == 0, completed.stderr

        warm_engine = EvaluationEngine(cache_dir=tmp_path)
        warm = sweep(warm_engine)
        assert front_signature(warm.front) == reference_front("beacon")
        assert warm_engine.stats.model_evaluations == 0
        assert warm_engine.stats.rows_loaded_from_disk == 64

    def test_baseline_warm_starts_from_the_full_models_segment(self, tmp_path):
        # The Figure-5 cross-problem flow, across processes: the full model
        # spills its three-component segment, and the (energy, delay)
        # baseline — same fingerprint — is served column projections of the
        # same floats, without a single model evaluation.
        cold_baseline = run_algorithm(
            ExhaustiveSearch(baseline_problem(EvaluationEngine()), chunk_size=16)
        )
        assert cold_baseline.model_evaluations > 0

        sweep(EvaluationEngine(cache_dir=tmp_path))  # full model spills

        warm_engine = EvaluationEngine(cache_dir=tmp_path)
        warm = sweep(warm_engine, baseline_problem)
        assert front_signature(warm.front) == front_signature(
            cold_baseline.front
        )
        assert warm_engine.stats.model_evaluations == 0

        # The baseline's narrower close-time spill must not have clobbered
        # the richer stored segment (merge rule: narrower is a no-op).
        segment = load_segment(next(tmp_path.glob("*.wbsncache")))
        assert segment.components == COMPONENTS
        assert len(segment) == 64


# --------------------------------------------------------------------------
# Fault injection: corrupted segments cold-start, kills leak no tmp files.


class TestSegmentFaultInjection:
    @pytest.mark.parametrize(
        "action, kwargs, fragment",
        [
            ("flip-byte", {}, "integrity"),
            ("truncate", dict(offset=6), "truncated"),
        ],
    )
    def test_mangled_segment_falls_back_to_cold_start(
        self, tmp_path, action, kwargs, fragment
    ):
        plan = FaultPlan([FaultSpec(site="cache-segment", action=action, **kwargs)])
        with inject_faults(plan):
            cold = sweep(EvaluationEngine(cache_dir=tmp_path))
        assert front_signature(cold.front) == reference_front("beacon")

        warm_engine = EvaluationEngine(cache_dir=tmp_path)
        with pytest.warns(CacheTierWarning, match=fragment):
            problem = beacon_problem(warm_engine)  # bind-time load warns
        warm = run_algorithm(ExhaustiveSearch(problem, chunk_size=16))
        assert front_signature(warm.front) == reference_front("beacon")
        # The unusable segment was ignored: a full cold sweep.
        assert warm_engine.stats.model_evaluations == 64
        assert warm_engine.stats.rows_loaded_from_disk == 0
        # Closing spills over the corrupt segment (warning again), healing
        # the cache directory for the next process.
        with pytest.warns(CacheTierWarning, match=fragment):
            warm_engine.close()
        healed_engine = EvaluationEngine(cache_dir=tmp_path)
        healed = sweep(healed_engine)
        assert front_signature(healed.front) == reference_front("beacon")
        assert healed_engine.stats.model_evaluations == 0

    def test_foreign_fingerprint_segment_is_ignored(self, tmp_path):
        probe = beacon_problem(EvaluationEngine())
        fingerprint = probe.evaluation_fingerprint()
        rows = {(0,) * len(probe.space.domains): ((1.0, 2.0, 3.0), True, 0)}
        foreign = spill_rows(
            tmp_path / "other", fingerprint=OTHER_FP, components=COMPONENTS,
            rows=rows,
        )
        os.replace(foreign, segment_path(tmp_path, fingerprint))

        engine = EvaluationEngine(cache_dir=tmp_path)
        with pytest.warns(CacheTierWarning, match="fingerprint"):
            beacon_problem(engine)
        assert engine.stats.rows_loaded_from_disk == 0

    def test_unservable_components_cold_start(self, tmp_path):
        probe = beacon_problem(EvaluationEngine())
        fingerprint = probe.evaluation_fingerprint()
        genes = len(probe.space.domains)
        save_segment(
            tmp_path,
            fingerprint=fingerprint,
            components=("foo", "bar"),
            genotypes=np.zeros((1, genes), dtype=np.int64),
            objectives=np.zeros((1, 2)),
            feasible=np.ones(1, dtype=bool),
            violation_counts=np.zeros(1, dtype=np.int64),
        )
        engine = EvaluationEngine(cache_dir=tmp_path)
        with pytest.warns(CacheTierWarning, match="cannot serve"):
            beacon_problem(engine)
        assert engine.stats.rows_loaded_from_disk == 0

    def test_sigkill_during_spill_leaks_no_tmp_file(self, tmp_path):
        # The writer is SIGKILL'd right after the segment write; the cache
        # directory must hold exactly the (valid) segment — the atomic-write
        # discipline never leaves a temporary behind.
        script = textwrap.dedent(
            f"""
            from test_faults import beacon_problem
            from repro.dse.exhaustive import ExhaustiveSearch
            from repro.dse.runner import run_algorithm
            from repro.engine import EvaluationEngine, FaultPlan, FaultSpec
            from repro.engine import install_fault_plan

            install_fault_plan(
                FaultPlan([FaultSpec(site="cache-segment-saved", action="kill")])
            )
            engine = EvaluationEngine(cache_dir={str(tmp_path)!r})
            with engine:
                run_algorithm(
                    ExhaustiveSearch(beacon_problem(engine), chunk_size=16)
                )
            raise SystemExit("the spill survived its SIGKILL")
            """
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env=subprocess_env(),
            capture_output=True,
            text=True,
        )
        assert completed.returncode == -9, completed.stderr
        names = sorted(p.name for p in tmp_path.iterdir())
        assert len(names) == 1 and names[0].endswith(".wbsncache"), names
        assert not list(tmp_path.glob("*.tmp"))
        # And the segment the kill raced is whole: a warm start serves it.
        warm_engine = EvaluationEngine(cache_dir=tmp_path)
        warm = sweep(warm_engine)
        assert front_signature(warm.front) == reference_front("beacon")
        assert warm_engine.stats.model_evaluations == 0


# --------------------------------------------------------------------------
# Cache-dir hygiene: segment listing, orphaned-tmp removal at load.


class TestCacheDirHygiene:
    def test_list_segments_filters_foreign_files(self, tmp_path):
        segment = save_segment(
            tmp_path, fingerprint=FP, components=COMPONENTS, **column_arrays(ROWS)
        )
        other = save_segment(
            tmp_path,
            fingerprint=OTHER_FP,
            components=COMPONENTS,
            **column_arrays(ROWS),
        )
        (tmp_path / "notes.txt").write_text("not a segment")
        (tmp_path / f"nothex{SEGMENT_SUFFIX}").write_text("bad stem")
        (tmp_path / f"{FP.hex()}{SEGMENT_SUFFIX}.123.0.tmp").write_bytes(b"x")
        (tmp_path / "sub").mkdir()
        assert list_segments(tmp_path) == sorted([segment, other])

    def test_list_segments_of_a_missing_directory_is_empty(self, tmp_path):
        assert list_segments(tmp_path / "nowhere") == []

    def test_orphaned_tmp_of_a_dead_writer_is_removed_at_load(self, tmp_path):
        path = save_segment(
            tmp_path, fingerprint=FP, components=COMPONENTS, **column_arrays(ROWS)
        )
        # A pid that existed and is gone: a subprocess that already exited.
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        orphan = tmp_path / f"{path.name}.{proc.pid}.7.tmp"
        orphan.write_bytes(b"half-written segment bytes")
        segment = load_segment_if_valid(path, fingerprint=FP)
        assert segment is not None and len(segment) == len(ROWS)
        assert not orphan.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_live_writers_tmp_is_left_alone(self, tmp_path):
        path = save_segment(
            tmp_path, fingerprint=FP, components=COMPONENTS, **column_arrays(ROWS)
        )
        in_flight = tmp_path / f"{path.name}.{os.getpid()}.3.tmp"
        in_flight.write_bytes(b"concurrent writer's bytes")
        misnamed = tmp_path / f"{path.name}.not-a-pid.tmp"
        misnamed.write_bytes(b"foreign tmp")
        assert load_segment_if_valid(path, fingerprint=FP) is not None
        assert in_flight.exists()  # its writer (this process) is alive
        assert misnamed.exists()  # not the atomic-write naming scheme
        assert remove_orphaned_tmp_siblings(path) == []

    def test_sigkill_mid_write_leaves_an_orphan_the_next_load_sweeps(
        self, tmp_path
    ):
        # The writer dies *between* the tmp write and the rename — the one
        # window the atomic protocol cannot clean up after.  The next load
        # must sweep the orphan and still serve the previous segment.
        save_segment(
            tmp_path, fingerprint=FP, components=COMPONENTS, **column_arrays(ROWS)
        )
        script = textwrap.dedent(
            f"""
            import os, signal
            import numpy as np
            from repro.engine import checkpoint, save_segment

            def die_before_rename(src, dst):
                os.kill(os.getpid(), signal.SIGKILL)

            checkpoint.os.replace = die_before_rename
            save_segment(
                {str(tmp_path)!r},
                fingerprint=bytes(range(32)),
                components=("energy", "quality", "delay"),
                genotypes=np.zeros((1, 2), dtype=np.int64),
                objectives=np.ones((1, 3)),
                feasible=np.ones(1, dtype=bool),
                violation_counts=np.zeros(1, dtype=np.int64),
            )
            raise SystemExit("the write survived its SIGKILL")
            """
        )
        completed = subprocess.run(
            [sys.executable, "-c", script],
            env=subprocess_env(),
            capture_output=True,
            text=True,
        )
        assert completed.returncode == -9, completed.stderr
        orphans = list(tmp_path.glob("*.tmp"))
        assert len(orphans) == 1  # the crash really left one behind
        path = segment_path(tmp_path, FP)
        segment = load_segment_if_valid(path, fingerprint=FP)
        assert segment is not None and len(segment) == len(ROWS)
        assert not list(tmp_path.glob("*.tmp"))
        assert list_segments(tmp_path) == [path]


# --------------------------------------------------------------------------
# Column-memo LRU bound (bugfix): bounded memory, unchanged results.


class TestColumnMemoBound:
    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="column_memo_max_entries"):
            EvaluationEngine(column_memo_max_entries=0)
        with pytest.raises(ValueError, match="column_memo_max_entries"):
            EvaluationEngine(column_memo_max_entries=-1)

    def test_eviction_is_least_recently_used(self):
        engine = EvaluationEngine(column_memo_max_entries=2)
        row = ((1.0,), True, 0)
        engine._column_memo_put((1,), row)
        engine._column_memo_put((2,), row)
        assert engine._column_memo_hit((1,)) is row  # touch (1,)
        engine._column_memo_put((3,), row)  # evicts (2,), the LRU entry
        assert set(engine._column_memo) == {(1,), (3,)}
        assert engine.stats.column_memo_evictions == 1

    def test_bounded_sweep_keeps_the_front(self):
        engine = EvaluationEngine(column_memo_max_entries=8)
        result = run_algorithm(
            ExhaustiveSearch(beacon_problem(engine), chunk_size=16)
        )
        assert front_signature(result.front) == reference_front("beacon")
        assert len(engine._column_memo) <= 8
        assert engine.stats.column_memo_evictions > 0

    def test_bounded_warm_start_recomputes_evicted_rows(self, tmp_path):
        sweep(EvaluationEngine(cache_dir=tmp_path))
        engine = EvaluationEngine(cache_dir=tmp_path, column_memo_max_entries=8)
        result = sweep(engine)
        # Most loaded rows were evicted before the sweep reached them — the
        # bound trades recomputation for memory, never correctness.
        assert front_signature(result.front) == reference_front("beacon")
        assert engine.stats.column_memo_evictions > 0
        assert engine.stats.model_evaluations > 0


class TestPruneCacheDir:
    """Cache-directory garbage collection (:func:`prune_cache_dir`)."""

    def _segment(self, directory, fingerprint, *, rows=None, mtime=None):
        path = save_segment(
            directory,
            fingerprint=fingerprint,
            components=COMPONENTS,
            **column_arrays(rows or ROWS),
        )
        if mtime is not None:
            os.utime(path, (mtime, mtime))
        return path

    def test_missing_directory_is_a_noop(self, tmp_path):
        assert prune_cache_dir(tmp_path / "absent", max_bytes=0) == []

    def test_no_budget_removes_nothing(self, tmp_path):
        path = self._segment(tmp_path, FP)
        assert prune_cache_dir(tmp_path) == []
        assert path.exists()

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            prune_cache_dir(tmp_path, max_bytes=-1)
        with pytest.raises(ValueError, match="max_age_s"):
            prune_cache_dir(tmp_path, max_age_s=-1.0)

    def test_size_budget_removes_oldest_first(self, tmp_path):
        old = self._segment(tmp_path, FP, mtime=1_000)
        new = self._segment(tmp_path, OTHER_FP, mtime=2_000)
        budget = new.stat().st_size  # room for exactly one segment
        removed = prune_cache_dir(tmp_path, max_bytes=budget)
        assert removed == [old]
        assert not old.exists() and new.exists()

    def test_zero_budget_clears_the_directory(self, tmp_path):
        self._segment(tmp_path, FP, mtime=1_000)
        self._segment(tmp_path, OTHER_FP, mtime=2_000)
        removed = prune_cache_dir(tmp_path, max_bytes=0)
        assert len(removed) == 2
        assert list_segments(tmp_path) == []

    def test_age_budget_removes_stale_segments(self, tmp_path):
        import time as _time

        stale = self._segment(tmp_path, FP, mtime=_time.time() - 3_600)
        fresh = self._segment(tmp_path, OTHER_FP)
        removed = prune_cache_dir(tmp_path, max_age_s=60.0)
        assert removed == [stale]
        assert fresh.exists()

    def test_kept_segments_survive_any_budget(self, tmp_path):
        kept = self._segment(tmp_path, FP, mtime=1_000)  # oldest, but kept
        other = self._segment(tmp_path, OTHER_FP, mtime=2_000)
        removed = prune_cache_dir(
            tmp_path, max_bytes=0, max_age_s=0.0, keep=(kept,)
        )
        assert removed == [other]
        assert kept.exists()

    def test_live_engines_loaded_segment_is_protectable(self, tmp_path):
        sweep(EvaluationEngine(cache_dir=tmp_path))
        engine = EvaluationEngine(cache_dir=tmp_path)
        result = sweep(engine)
        assert engine.loaded_segments  # the warm start consumed the segment
        removed = prune_cache_dir(
            tmp_path, max_bytes=0, keep=engine.loaded_segments
        )
        assert removed == []
        # The engine's mapped rows stay servable after the prune.
        assert front_signature(result.front) == reference_front("beacon")

    def test_orphaned_tmp_siblings_are_swept(self, tmp_path):
        path = self._segment(tmp_path, FP)
        orphan = tmp_path / f"{path.name}.999999.0.tmp"
        orphan.write_bytes(b"dead")
        assert prune_cache_dir(tmp_path) == []
        assert not orphan.exists() and path.exists()

    def test_foreign_files_are_never_touched(self, tmp_path):
        foreign = tmp_path / "README.txt"
        foreign.write_text("not a segment")
        assert prune_cache_dir(tmp_path, max_bytes=0) == []
        assert foreign.exists()
