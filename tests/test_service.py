"""Chaos suite for the async DSE service front-end.

The service's promises are robustness promises, so every one of them is
tested by *making* the bad thing happen: burst overload against a tiny
admission window, the engine lane hung by an injected fault while deadlines
expire, workers hung past a client deadline, clients yanked mid-stream,
responses failing mid-write, shutdown racing admitted work.  The invariant
mirrors the rest of the chaos suite: results served through the service are
bitwise identical to the in-process paths, and every failure is a *typed*
error on the wire — never a silent drop, a wedged lane, or a leaked
admission slot.

All asyncio is driven through ``asyncio.run()`` inside synchronous tests
(the suite has no async test plugin, and doesn't need one).
"""

from __future__ import annotations

import asyncio
import json
import time

import pytest

from repro.dse.random_search import RandomSearch
from repro.dse.runner import run_algorithm
from repro.engine import (
    EvaluationEngine,
    FaultPlan,
    FaultSpec,
    RetryPolicy,
    inject_faults,
)
from repro.service import (
    WIRE_LINE_LIMIT,
    AdmissionController,
    BadRequestError,
    DeadlineExceededError,
    DesignRow,
    DseService,
    DseServiceClient,
    RemoteInternalError,
    ServiceOverloadError,
    ServiceShuttingDownError,
    decode_line,
    encode_message,
    error_for_code,
)
from repro.service.server import _Connection
from test_faults import (
    FAMILIES,
    FAST_RETRIES,
    beacon_problem,
    front_signature,
    reference_front,
)

#: Full design space of the two-node beacon family.  ``WbsnDseProblem``'s
#: constructor probes the all-zeros genotype through the engine to size the
#: objective vector, so a *fresh* service starts with exactly one memoised
#: row — a cold exhaustive sweep therefore computes ``SPACE_SIZE - 1``
#: models, and tests that count cold evaluations use the probe-free
#: genotype list below.
SPACE_SIZE = 64
SWEEP_COLD_EVALS = SPACE_SIZE - 1

_SPACE_GENOTYPES: list = []
_EXPECTED_ROWS: dict = {}


def space_genotypes() -> list:
    """Every beacon-space genotype except the constructor probe."""
    if not _SPACE_GENOTYPES:
        problem = beacon_problem(EvaluationEngine())
        probe = tuple(0 for _ in range(len(problem.space)))
        for genotype in problem.space.enumerate_genotypes():
            if genotype != probe:
                _SPACE_GENOTYPES.append(genotype)
        # The scalar path is bitwise identical to the columnar one (see
        # test_columnar), so this map is a valid reference for rows served
        # over the wire.
        for genotype in (probe, *_SPACE_GENOTYPES):
            design = problem.evaluate(genotype)
            _EXPECTED_ROWS[genotype] = (design.objectives, design.feasible)
    return list(_SPACE_GENOTYPES)


def expected_rows() -> dict:
    """genotype -> (objectives, feasible) for the whole beacon space."""
    space_genotypes()
    return dict(_EXPECTED_ROWS)


def service_front_signature(rows) -> list:
    """A served front in the same signature form as the in-process tests."""
    return [(row.genotype, row.objectives, row.feasible) for row in rows]


async def start_service(**kwargs) -> DseService:
    """A TCP service over a fresh serial-engine beacon problem."""
    engine = kwargs.pop("engine", None) or EvaluationEngine()
    problem = kwargs.pop("problem", None) or beacon_problem(engine)
    kwargs.setdefault("close_engine", True)
    service = DseService(problem, **kwargs)
    await service.start()
    return service


async def connect(service: DseService, client_id: str) -> DseServiceClient:
    if service.socket_path is not None:
        return await DseServiceClient.connect(
            path=service.socket_path, client_id=client_id
        )
    return await DseServiceClient.connect(
        host=service.host, port=service.port, client_id=client_id
    )


# --------------------------------------------------------------------------
# Protocol layer
# --------------------------------------------------------------------------


class TestProtocol:
    def test_message_roundtrip_is_bitwise(self):
        awkward = [0.1 + 0.2, 1.0 / 3.0, 6.03e-7, 1e-300, -0.0]
        message = {"op": "evaluate", "id": 7, "values": awkward}
        line = encode_message(message)
        assert line.endswith(b"\n")
        decoded = decode_line(line)
        assert decoded == message
        # Bitwise float identity is what the front-parity tests lean on.
        for sent, received in zip(awkward, decoded["values"]):
            assert sent == received and str(sent) == str(received)

    def test_design_row_wire_roundtrip(self):
        row = DesignRow(
            genotype=(3, 0, 1, 2),
            objectives=(1.0 / 3.0, 6.123456789e-4),
            feasible=True,
            violation_count=0,
        )
        over_the_wire = json.loads(encode_message({"row": row.as_wire()}))
        assert DesignRow.from_wire(over_the_wire["row"]) == row

    def test_design_row_rejects_junk(self):
        with pytest.raises(BadRequestError):
            DesignRow.from_wire([1, 2])
        with pytest.raises(BadRequestError):
            DesignRow.from_wire([["x"], [1.0], True, 0])

    def test_decode_rejects_non_objects(self):
        with pytest.raises(BadRequestError):
            decode_line(b"this is not json\n")
        with pytest.raises(BadRequestError):
            decode_line(b"[1, 2, 3]\n")

    def test_encode_refuses_nan(self):
        with pytest.raises(ValueError):
            encode_message({"x": float("nan")})

    def test_error_code_mapping(self):
        for cls in (
            ServiceOverloadError,
            ServiceShuttingDownError,
            DeadlineExceededError,
            BadRequestError,
            RemoteInternalError,
        ):
            rebuilt = error_for_code(cls.code, "why")
            assert type(rebuilt) is cls
            assert str(rebuilt) == "why"
        assert isinstance(
            error_for_code("from-the-future", "?"), RemoteInternalError
        )


# --------------------------------------------------------------------------
# Admission control
# --------------------------------------------------------------------------


class TestAdmission:
    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)
        with pytest.raises(ValueError):
            AdmissionController(max_pending=4, high_watermark=6)
        with pytest.raises(ValueError):
            AdmissionController(
                max_pending=8, high_watermark=4, low_watermark=5
            )

    def test_hysteresis_band(self):
        gate = AdmissionController(
            max_pending=8, high_watermark=6, low_watermark=2
        )
        for _ in range(6):
            gate.try_admit()
        assert gate.shedding
        with pytest.raises(ServiceOverloadError):
            gate.try_admit()
        # Falling below the high mark is not enough: the band holds until
        # the backlog reaches the low mark.
        for _ in range(3):
            gate.release()
        assert gate.pending == 3 and gate.shedding
        with pytest.raises(ServiceOverloadError):
            gate.try_admit()
        gate.release()
        assert gate.pending == 2 and not gate.shedding
        gate.try_admit()
        assert gate.pending == 3
        assert gate.admitted == 7
        assert gate.rejected_overload == 2

    def test_hard_bound_without_a_band(self):
        gate = AdmissionController(max_pending=3)
        for _ in range(3):
            gate.try_admit()
        with pytest.raises(ServiceOverloadError):
            gate.try_admit()

    def test_draining_is_one_way_and_typed(self):
        async def scenario():
            gate = AdmissionController(max_pending=4)
            gate.try_admit()
            gate.start_drain()
            with pytest.raises(ServiceShuttingDownError):
                gate.try_admit()
            assert gate.rejected_draining == 1
            waiter = asyncio.create_task(gate.wait_idle())
            await asyncio.sleep(0)
            assert not waiter.done()
            gate.release()
            await asyncio.wait_for(waiter, 1.0)

        asyncio.run(scenario())

    def test_release_underflow_is_a_bug(self):
        gate = AdmissionController(max_pending=2)
        with pytest.raises(RuntimeError):
            gate.release()


# --------------------------------------------------------------------------
# Service basics and request validation
# --------------------------------------------------------------------------


class TestServiceBasics:
    def test_ping_stats_and_unknown_op(self):
        async def scenario():
            service = await start_service()
            try:
                client = await connect(service, "alice")
                try:
                    await client.ping()
                    stats = await client.stats()
                    assert stats["admission"]["pending"] == 0
                    assert stats["connections"] == 1
                    assert "model_evaluations" in stats["engine"]
                    with pytest.raises(BadRequestError):
                        await client._request({"op": "frobnicate"})
                finally:
                    await client.close()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_malformed_line_gets_a_typed_error_event(self):
        async def scenario():
            service = await start_service()
            try:
                reader, writer = await asyncio.open_connection(
                    service.host, service.port
                )
                try:
                    writer.write(b"this is not a protocol line\n")
                    await writer.drain()
                    event = json.loads(await reader.readline())
                    assert event["event"] == "error"
                    assert event["code"] == "bad-request"
                    assert event["id"] is None
                finally:
                    writer.close()
                    await writer.wait_closed()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_oversized_line_is_rejected_typed(self):
        async def scenario():
            service = await start_service()
            try:
                reader, writer = await asyncio.open_connection(
                    service.host, service.port, limit=WIRE_LINE_LIMIT
                )
                try:
                    # One unterminated line past the wire limit: the server
                    # cannot reframe the stream, so it answers a typed
                    # bad-request (id unattributable) and drops the peer.
                    writer.write(b"x" * (WIRE_LINE_LIMIT + 4096))
                    await writer.drain()
                    event = json.loads(
                        await asyncio.wait_for(reader.readline(), 10.0)
                    )
                    assert event["event"] == "error"
                    assert event["code"] == "bad-request"
                    assert event["id"] is None
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
                # The service survived: a fresh client is served normally.
                client = await connect(service, "alice")
                try:
                    await client.ping()
                finally:
                    await client.close()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_unix_socket_transport(self, tmp_path):
        sock = str(tmp_path / "dse.sock")

        async def scenario():
            service = await start_service(socket_path=sock)
            try:
                assert service.address == sock
                client = await connect(service, "alice")
                try:
                    genotypes = space_genotypes()[:4]
                    reply = await client.evaluate(genotypes)
                    expected = expected_rows()
                    for genotype, row in zip(genotypes, reply.rows):
                        assert row.genotype == tuple(genotype)
                        assert row.objectives == expected[genotype][0]
                finally:
                    await client.close()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_bad_requests_are_typed_not_fatal(self):
        async def scenario():
            service = await start_service()
            try:
                client = await connect(service, "alice")
                try:
                    with pytest.raises(BadRequestError):
                        await client.evaluate([])
                    with pytest.raises(BadRequestError):
                        await client.sweep("simulated-annealing")
                    with pytest.raises(BadRequestError):
                        await client.sweep(
                            "exhaustive", params={"shell": "rm -rf /"}
                        )
                    with pytest.raises(BadRequestError):
                        await client.sweep(
                            "exhaustive", params={"chunk_size": "16"}
                        )
                    with pytest.raises(BadRequestError):
                        await client.evaluate(
                            [space_genotypes()[0]], deadline_s=-2.0
                        )
                    # The connection and the service survived all of it.
                    await client.ping()
                    stats = await client.stats()
                    assert stats["admission"]["pending"] == 0
                finally:
                    await client.close()
            finally:
                await service.stop()

        asyncio.run(scenario())


# --------------------------------------------------------------------------
# Coalescing, attribution, and front parity (the tentpole contract)
# --------------------------------------------------------------------------


class TestCoalescingAndParity:
    def test_concurrent_evaluates_coalesce_into_one_batch(self):
        genotypes = space_genotypes()
        expected = expected_rows()

        async def scenario():
            # A generous window so both clients' requests land in the same
            # columnar dispatch regardless of scheduling jitter.
            service = await start_service(batch_window_s=0.25)
            try:
                alice = await connect(service, "alice")
                bob = await connect(service, "bob")
                try:
                    reply_a, reply_b = await asyncio.gather(
                        alice.evaluate(genotypes), bob.evaluate(genotypes)
                    )
                    for reply in (reply_a, reply_b):
                        for genotype, row in zip(genotypes, reply.rows):
                            assert row.genotype == tuple(genotype)
                            assert row.objectives == expected[genotype][0]
                            assert row.feasible == expected[genotype][1]
                    # Bitwise identity between the two clients' replies.
                    assert reply_a.rows == reply_b.rows
                    stats = await alice.stats()
                    assert stats["lane"]["batches_coalesced"] >= 1
                    assert stats["lane"]["items_coalesced"] >= 2
                    # The engine computed each distinct genotype once even
                    # though two clients asked for all of them (the +1 is
                    # the problem constructor's probe evaluation).
                    assert (
                        stats["engine"]["model_evaluations"]
                        == len(genotypes) + 1
                    )
                    clients = stats["lane"]["clients"]
                    assert set(clients) == {"alice", "bob"}
                    for ledger in clients.values():
                        assert ledger["genotype_requests"] == len(genotypes)
                    # Every distinct genotype has exactly one owner; the
                    # batch-mate rides on cache-hit economics.
                    assert sum(
                        ledger["model_evaluations"]
                        for ledger in clients.values()
                    ) == len(genotypes)
                    assert sum(
                        ledger["genotype_cache_hits"]
                        for ledger in clients.values()
                    ) == len(genotypes)
                finally:
                    await alice.close()
                    await bob.close()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_concurrent_sweeps_share_one_sweeps_work(self):
        expected = reference_front("beacon")

        async def scenario():
            service = await start_service()
            try:
                alice = await connect(service, "alice")
                bob = await connect(service, "bob")
                try:
                    reply_a, reply_b = await asyncio.gather(
                        alice.sweep("exhaustive", params={"chunk_size": 16}),
                        bob.sweep("exhaustive", params={"chunk_size": 16}),
                    )
                    # Acceptance: both fronts bitwise identical to the solo
                    # in-process run; the second sweep is served entirely
                    # from the first one's cache capacity.
                    assert service_front_signature(reply_a.front) == expected
                    assert service_front_signature(reply_b.front) == expected
                    assert reply_a.evaluations == SPACE_SIZE
                    assert reply_b.evaluations == SPACE_SIZE
                    evals = sorted(
                        reply.engine_stats["model_evaluations"]
                        for reply in (reply_a, reply_b)
                    )
                    assert evals == [0, SWEEP_COLD_EVALS]
                    stats = await alice.stats()
                    assert stats["engine"]["model_evaluations"] == SPACE_SIZE
                finally:
                    await alice.close()
                    await bob.close()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_random_sweep_parity_with_in_process_run(self):
        params = dict(samples=40, seed=7, chunk_size=16)
        in_process = run_algorithm(
            RandomSearch(beacon_problem(EvaluationEngine()), **params)
        )

        async def scenario():
            service = await start_service()
            try:
                client = await connect(service, "alice")
                try:
                    reply = await client.sweep("random", params=params)
                    assert service_front_signature(
                        reply.front
                    ) == front_signature(in_process.front)
                    assert reply.evaluations == in_process.evaluations
                finally:
                    await client.close()
            finally:
                await service.stop()

        asyncio.run(scenario())


# --------------------------------------------------------------------------
# Streaming front updates
# --------------------------------------------------------------------------


class TestStreaming:
    def test_front_updates_stream_with_monotonic_cursors(self):
        expected = reference_front("beacon")
        updates = []

        async def scenario():
            service = await start_service()
            try:
                client = await connect(service, "alice")
                try:
                    reply = await client.sweep(
                        "exhaustive",
                        params={"chunk_size": 8},
                        on_front_update=updates.append,
                    )
                    assert service_front_signature(reply.front) == expected
                finally:
                    await client.close()
            finally:
                await service.stop()

        asyncio.run(scenario())
        assert updates, "a streamed sweep must deliver at least one update"
        cursors = [update.cursor for update in updates]
        assert cursors == sorted(cursors)
        assert all(0 < cursor <= SPACE_SIZE for cursor in cursors)
        # Streamed snapshots are genuine front prefixes: non-empty rows of
        # the same wire shape as the terminal front.
        for update in updates:
            for row in update.front:
                assert isinstance(row, DesignRow)

    def test_slow_consumer_conflation_keeps_newest_update(self):
        async def scenario():
            connection = _Connection("conn-test", writer=None)
            connection.post_update(1, {"id": 1, "cursor": 8})
            connection.post_update(1, {"id": 1, "cursor": 16})
            connection.post_update(1, {"id": 1, "cursor": 24})
            connection.post_update(2, {"id": 2, "cursor": 8})
            connection.post({"id": 1, "event": "result"})
            # Two updates were conflated away; one slot per request id
            # remains, holding the newest payload, and the terminal event
            # was queued untouched.
            assert connection.conflated == 2
            assert connection._update_slots[1]["cursor"] == 24
            assert len(connection._events) == 3

        asyncio.run(scenario())


# --------------------------------------------------------------------------
# Burst overload: typed shedding, admitted work unharmed
# --------------------------------------------------------------------------


class TestOverload:
    def test_burst_sheds_typed_while_admitted_requests_complete(self):
        genotypes = space_genotypes()
        expected = expected_rows()
        # The first batch hangs the lane long enough for the whole burst to
        # hit admission while pending work is at its peak.
        plan = FaultPlan(
            [FaultSpec(site="service-batch", action="hang", delay_s=0.25, at=(0,))]
        )

        async def scenario():
            service = await start_service(batch_window_s=0.0, max_pending=4)
            try:
                client = await connect(service, "alice")
                try:
                    with inject_faults(plan):
                        outcomes = await asyncio.gather(
                            *(
                                client.evaluate([genotypes[i]])
                                for i in range(10)
                            ),
                            return_exceptions=True,
                        )
                    served = [
                        outcome
                        for outcome in outcomes
                        if not isinstance(outcome, BaseException)
                    ]
                    shed = [
                        outcome
                        for outcome in outcomes
                        if isinstance(outcome, BaseException)
                    ]
                    # Exactly the admission bound was served; every shed
                    # request got the typed overload error, nothing else.
                    assert len(served) == 4
                    assert len(shed) == 6
                    assert all(
                        isinstance(outcome, ServiceOverloadError)
                        for outcome in shed
                    )
                    # Admitted requests completed unharmed and correct.
                    for i, outcome in enumerate(outcomes):
                        if isinstance(outcome, BaseException):
                            continue
                        (row,) = outcome.rows
                        assert row.genotype == tuple(genotypes[i])
                        assert row.objectives == expected[genotypes[i]][0]
                    stats = await client.stats()
                    admission = stats["admission"]
                    assert admission["pending"] == 0
                    assert not admission["shedding"]
                    assert admission["rejected_overload"] == 6
                    assert admission["admitted"] == admission["completed"] == 4
                    # The service is healthy after the burst: shedding
                    # cleared, new work admitted and served.
                    reply = await client.evaluate([genotypes[-1]])
                    assert reply.rows[0].objectives == expected[genotypes[-1]][0]
                finally:
                    await client.close()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_drain_rejects_shutting_down_but_finishes_in_flight(self):
        genotypes = space_genotypes()
        expected = expected_rows()
        plan = FaultPlan(
            [FaultSpec(site="service-batch", action="hang", delay_s=0.3, at=(0,))]
        )

        async def scenario():
            service = await start_service(batch_window_s=0.0)
            client = await connect(service, "alice")
            try:
                with inject_faults(plan):
                    in_flight = asyncio.create_task(
                        client.evaluate([genotypes[0]])
                    )
                    await asyncio.sleep(0.05)  # the lane is now hanging
                    stopper = asyncio.create_task(service.stop())
                    await asyncio.sleep(0.05)  # draining is in effect
                    with pytest.raises(ServiceShuttingDownError):
                        await client.evaluate([genotypes[1]])
                    reply = await in_flight
                    assert reply.rows[0].objectives == expected[genotypes[0]][0]
                    await asyncio.wait_for(stopper, 5.0)
                assert service.admission.rejected_draining == 1
                assert service.admission.pending == 0
            finally:
                await client.close()

        asyncio.run(scenario())


# --------------------------------------------------------------------------
# Deadlines
# --------------------------------------------------------------------------


class TestDeadlines:
    def test_deadline_scope_reserves_a_degradation_slot(self):
        policy = RetryPolicy(max_attempts=2, backoff_base_s=0.1)
        engine = EvaluationEngine(
            backend="process", max_workers=2, retry_policy=policy
        )
        with engine:
            backend = engine.backend
            assert backend.retry_policy.batch_timeout_s is None
            with engine.deadline_scope(3.1):
                # backoff between the two attempts is 0.1 s; the rest of
                # the budget splits across two pool attempts plus one
                # reserved slot for the in-process degradation rung.
                clamped = backend.retry_policy.batch_timeout_s
                assert clamped == pytest.approx((3.1 - 0.1) / 3)
            assert backend.retry_policy.batch_timeout_s is None
            with engine.deadline_scope(None):
                assert backend.retry_policy.batch_timeout_s is None

    def test_deadline_scope_is_a_noop_on_serial_engines(self):
        engine = EvaluationEngine()
        with engine.deadline_scope(0.5):
            pass  # nothing to clamp; must not raise

    def test_expiry_is_typed_and_the_engine_survives(self):
        genotypes = space_genotypes()
        expected = expected_rows()
        plan = FaultPlan(
            [FaultSpec(site="service-batch", action="hang", delay_s=0.4, at=(0,))]
        )

        async def scenario():
            service = await start_service(batch_window_s=0.0)
            try:
                client = await connect(service, "alice")
                try:
                    with inject_faults(plan):
                        outcomes = await asyncio.gather(
                            # Expires while the hung batch computes.
                            client.evaluate([genotypes[0]], deadline_s=0.15),
                            # Expires while queued behind the hung batch.
                            client.evaluate([genotypes[1]], deadline_s=0.15),
                            return_exceptions=True,
                        )
                    assert all(
                        isinstance(outcome, DeadlineExceededError)
                        for outcome in outcomes
                    )
                    # Missed deadlines released their admission slots and
                    # left the engine fully serviceable.
                    stats = await client.stats()
                    assert stats["admission"]["pending"] == 0
                    reply = await client.evaluate([genotypes[2]], deadline_s=30.0)
                    assert reply.rows[0].objectives == expected[genotypes[2]][0]
                finally:
                    await client.close()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_hung_workers_cannot_break_a_client_deadline(self):
        genotypes = space_genotypes()
        expected = expected_rows()
        # Every pool dispatch hangs far past the deadline; only the clamped
        # batch timeout and the in-process degradation rung can serve this.
        plan = FaultPlan(
            [FaultSpec(site="chunk", action="hang", delay_s=30.0)]
        )
        deadline_s = 2.5

        async def scenario():
            engine = EvaluationEngine(
                backend="process",
                max_workers=2,
                vectorized=False,
                chunk_size=8,
                retry_policy=FAST_RETRIES,
            )
            service = await start_service(engine=engine, batch_window_s=0.0)
            try:
                client = await connect(service, "alice")
                try:
                    with inject_faults(plan):
                        started = time.monotonic()
                        reply = await client.evaluate(
                            genotypes, deadline_s=deadline_s
                        )
                        elapsed = time.monotonic() - started
                    # The reply beat the deadline despite 30 s worker hangs
                    # (clamped retries, then the in-process ladder), is
                    # flagged degraded, and is still bitwise correct.
                    assert elapsed < deadline_s + 1.0
                    assert reply.degraded
                    for genotype, row in zip(genotypes, reply.rows):
                        assert row.objectives == expected[genotype][0]
                    stats = await client.stats()
                    assert stats["engine"]["worker_failures"] >= 1
                    assert stats["engine"]["degraded_batches"] >= 1
                finally:
                    await client.close()
            finally:
                await service.stop()

        asyncio.run(scenario())


# --------------------------------------------------------------------------
# Client disconnects and broken response writes
# --------------------------------------------------------------------------


class TestDisconnects:
    def test_disconnect_mid_stream_never_wedges_the_lane(self):
        expected = reference_front("beacon")

        async def scenario():
            service = await start_service()
            try:
                alice = await connect(service, "alice")
                dropped = asyncio.Event()

                def on_update(update):
                    # Yank the connection on the first streamed update.
                    if not dropped.is_set():
                        dropped.set()
                        asyncio.get_running_loop().create_task(alice.close())

                with pytest.raises(ConnectionError):
                    await alice.sweep(
                        "exhaustive",
                        params={"chunk_size": 4},
                        on_front_update=on_update,
                    )
                assert dropped.is_set()

                # The abandoned sweep still runs to completion server-side
                # and releases its admission slot.
                bob = await connect(service, "bob")
                try:
                    for _ in range(100):
                        stats = await bob.stats()
                        if stats["admission"]["pending"] == 0:
                            break
                        await asyncio.sleep(0.05)
                    assert stats["admission"]["pending"] == 0
                    assert (
                        stats["admission"]["admitted"]
                        == stats["admission"]["completed"]
                    )
                    # ... and its designs are shared cache capacity: bob's
                    # sweep of the same fingerprint costs zero evaluations.
                    reply = await bob.sweep(
                        "exhaustive", params={"chunk_size": 16}
                    )
                    assert service_front_signature(reply.front) == expected
                    assert reply.engine_stats["model_evaluations"] == 0
                finally:
                    await bob.close()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_broken_response_write_does_not_leak_admission(self):
        genotypes = space_genotypes()
        expected = expected_rows()
        plan = FaultPlan(
            [FaultSpec(site="service-response", action="raise", at=(0,))]
        )

        async def scenario():
            service = await start_service()
            try:
                alice = await connect(service, "alice")
                # Armed only after the handshake: the next response write —
                # alice's evaluate result — fails as if the socket broke.
                with inject_faults(plan):
                    with pytest.raises(asyncio.TimeoutError):
                        await asyncio.wait_for(
                            alice.evaluate([genotypes[0]]), 1.0
                        )
                await alice.close()

                bob = await connect(service, "bob")
                try:
                    for _ in range(100):
                        stats = await bob.stats()
                        if stats["admission"]["pending"] == 0:
                            break
                        await asyncio.sleep(0.05)
                    assert stats["admission"]["pending"] == 0
                    reply = await bob.evaluate([genotypes[0]])
                    assert reply.rows[0].objectives == expected[genotypes[0]][0]
                finally:
                    await bob.close()
            finally:
                await service.stop()

        asyncio.run(scenario())

    def test_poisoned_request_is_a_typed_internal_error(self):
        genotypes = space_genotypes()
        expected = expected_rows()
        plan = FaultPlan(
            [FaultSpec(site="service-request", action="raise", at=(0,))]
        )

        async def scenario():
            service = await start_service()
            try:
                client = await connect(service, "alice")
                try:
                    with inject_faults(plan):
                        with pytest.raises(RemoteInternalError):
                            await client.evaluate([genotypes[0]])
                        # The admission slot was released on the failure
                        # path; the very next request is served normally.
                        reply = await client.evaluate([genotypes[0]])
                    assert reply.rows[0].objectives == expected[genotypes[0]][0]
                    stats = await client.stats()
                    assert stats["admission"]["pending"] == 0
                finally:
                    await client.close()
            finally:
                await service.stop()

        asyncio.run(scenario())


# --------------------------------------------------------------------------
# Degradation surfacing
# --------------------------------------------------------------------------


class TestDegradationSurfacing:
    def test_degraded_batches_flag_their_responses(self):
        genotypes = space_genotypes()
        expected = expected_rows()
        # Every pool dispatch raises; retries exhaust and the engine serves
        # the batch from its in-process ladder.
        plan = FaultPlan([FaultSpec(site="chunk", action="raise")])

        async def scenario():
            engine = EvaluationEngine(
                backend="process",
                max_workers=2,
                vectorized=False,
                chunk_size=16,
                retry_policy=FAST_RETRIES,
            )
            service = await start_service(engine=engine, batch_window_s=0.0)
            try:
                client = await connect(service, "alice")
                try:
                    with inject_faults(plan):
                        reply = await client.evaluate(genotypes)
                    assert reply.degraded
                    for genotype, row in zip(genotypes, reply.rows):
                        assert row.objectives == expected[genotype][0]
                    stats = await client.stats()
                    assert stats["engine"]["degraded_batches"] >= 1
                finally:
                    await client.close()
            finally:
                await service.stop()

        asyncio.run(scenario())


# --------------------------------------------------------------------------
# Graceful drain, persistent spill, warm reboot
# --------------------------------------------------------------------------


class TestDrainSpillWarmBoot:
    def test_stop_spills_and_the_next_boot_warm_starts(self, tmp_path):
        cache_dir = str(tmp_path / "tier")
        expected = reference_front("beacon")

        async def scenario():
            first = await start_service(cache_dir=cache_dir)
            try:
                client = await connect(first, "alice")
                try:
                    reply = await client.sweep(
                        "exhaustive", params={"chunk_size": 16}
                    )
                    assert service_front_signature(reply.front) == expected
                    assert (
                        reply.engine_stats["model_evaluations"]
                        == SWEEP_COLD_EVALS
                    )
                finally:
                    await client.close()
            finally:
                await first.stop()
            assert first.rows_warm_started == 0
            assert any((tmp_path / "tier").iterdir()), "stop() must spill"

            second = await start_service(cache_dir=cache_dir)
            try:
                assert second.rows_warm_started >= SWEEP_COLD_EVALS
                client = await connect(second, "bob")
                try:
                    reply = await client.sweep(
                        "exhaustive", params={"chunk_size": 16}
                    )
                    assert service_front_signature(reply.front) == expected
                    # The whole sweep was served from the warm-started rows.
                    assert reply.engine_stats["model_evaluations"] == 0
                finally:
                    await client.close()
            finally:
                await second.stop()

        asyncio.run(scenario())
