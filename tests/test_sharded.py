"""Sharded shared-memory backend: parity, lifecycle and cache-aware masks.

The sharded backend must be *semantically invisible*: identical fronts, bit
for bit, for all four algorithms and both MAC families (the parity fuzz and
golden-front suites extend this further).  On top of parity, these tests pin
the resource lifecycle — pools and shared-memory segments are released by
``close()`` / the engine context manager — and the engine-edge behaviours
this PR fixes: empty/all-cached/duplicate-only batches never invoke a
kernel, and ``make_backend`` rejects the silently-ignored
instance-plus-``max_workers`` combination.
"""

from __future__ import annotations

from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.dse.exhaustive import ExhaustiveSearch
from repro.dse.nsga2 import Nsga2, Nsga2Settings
from repro.dse.problem import WbsnDseProblem, csma_mac_parameterisation
from repro.dse.random_search import RandomSearch
from repro.dse.runner import run_algorithm
from repro.dse.simulated_annealing import (
    MultiObjectiveSimulatedAnnealing,
    SimulatedAnnealingSettings,
)
from repro.engine import (
    EvaluationEngine,
    ProcessBackend,
    SerialBackend,
    ShardedVectorizedBackend,
    make_backend,
)
from repro.engine.sharded import SharedArrayArena, attach_arena_views
from repro.experiments.casestudy import (
    build_case_study_evaluator,
    build_csma_case_study_evaluator,
)

#: Small two-node spaces (64 configurations) keep the pool runs fast.
NODE_DOMAINS = dict(
    compression_ratios=(0.2, 0.3),
    frequencies_hz=(4e6, 8e6),
)


def beacon_problem(engine: EvaluationEngine) -> WbsnDseProblem:
    return WbsnDseProblem(
        build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
        **NODE_DOMAINS,
        payload_bytes=(60, 80),
        order_pairs=((4, 4), (4, 6)),
        engine=engine,
    )


def csma_problem(engine: EvaluationEngine) -> WbsnDseProblem:
    return WbsnDseProblem(
        build_csma_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
        **NODE_DOMAINS,
        mac_parameterisation=csma_mac_parameterisation(
            payload_bytes=(60, 80),
            backoff_exponent_pairs=((3, 5), (4, 6)),
        ),
        engine=engine,
    )


SCENARIOS = {"beacon": beacon_problem, "csma": csma_problem}


def sharded_engine(**kwargs) -> EvaluationEngine:
    return EvaluationEngine(backend="sharded", max_workers=2, **kwargs)


def front_signature(front):
    return [(design.genotype, design.objectives, design.feasible) for design in front]


class TestBitwiseParity:
    """Sharded fronts are identical to serial-kernel fronts, all algorithms."""

    ALGORITHMS = {
        "exhaustive": lambda problem: ExhaustiveSearch(problem, chunk_size=16),
        "random": lambda problem: RandomSearch(problem, samples=40, seed=5),
        "nsga2": lambda problem: Nsga2(
            problem, Nsga2Settings(population_size=12, generations=4, seed=5)
        ),
        "annealing": lambda problem: MultiObjectiveSimulatedAnnealing(
            problem, SimulatedAnnealingSettings(iterations=60, seed=5)
        ),
    }

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_all_four_algorithms_identical(self, scenario):
        build = SCENARIOS[scenario]
        serial = build(EvaluationEngine())
        with sharded_engine() as engine:
            sharded = build(engine)
            for name in sorted(self.ALGORITHMS):
                factory = self.ALGORITHMS[name]
                want = front_signature(factory(serial).run())
                got = front_signature(factory(sharded).run())
                assert got == want, (scenario, name)
            # Every batch miss went through worker kernels, none through the
            # scalar fallback.
            assert engine.stats.sharded_designs > 0
            assert engine.stats.sharded_designs == engine.stats.vectorized_designs

    def test_sharded_matches_serial_on_random_batches(self):
        serial = beacon_problem(EvaluationEngine())
        with sharded_engine() as engine:
            sharded = beacon_problem(engine)
            rng = np.random.default_rng(11)
            genotypes = [sharded.space.random_genotype(rng) for _ in range(150)]
            genotypes += genotypes[:30]  # duplicates exercise the dedup path
            fast = sharded.evaluate_batch(genotypes)
            slow = serial.evaluate_batch(genotypes)
            assert [d.objectives for d in fast] == [d.objectives for d in slow]
            assert [d.feasible for d in fast] == [d.feasible for d in slow]
            assert [d.genotype for d in fast] == [d.genotype for d in slow]


class TestCachedRowMask:
    """Memoised rows skip the column gather; warm batches skip the pool."""

    def test_warm_batch_skips_the_kernel_entirely(self):
        with sharded_engine() as engine:
            problem = beacon_problem(engine)
            rng = np.random.default_rng(3)
            genotypes = [problem.space.random_genotype(rng) for _ in range(40)]
            problem.evaluate_batch(genotypes)
            before = engine.stats.snapshot()
            again = problem.evaluate_batch(genotypes)
            delta = engine.stats.snapshot() - before
            assert delta.model_evaluations == 0
            assert delta.sharded_designs == 0
            assert delta.rows_skipped_cached == len(set(genotypes))
            assert [d.objectives for d in again] == [
                d.objectives for d in problem.evaluate_batch(genotypes)
            ]

    def test_mixed_batch_only_computes_the_misses(self):
        with sharded_engine() as engine:
            problem = beacon_problem(engine)
            warm = [(0, 0, 0, 0, 0, 0), (1, 1, 1, 1, 1, 1)]
            problem.evaluate_batch(warm)
            cold = [(0, 1, 0, 1, 0, 1), (1, 0, 1, 0, 1, 0)]
            before = engine.stats.snapshot()
            problem.evaluate_batch(warm + cold)
            delta = engine.stats.snapshot() - before
            assert delta.model_evaluations == len(cold)
            assert delta.sharded_designs == len(cold)
            assert delta.rows_skipped_cached == len(warm)

    def test_serial_kernel_honours_the_mask_too(self):
        with EvaluationEngine() as engine:
            problem = beacon_problem(engine)
            warm = [(0, 0, 0, 0, 0, 0)]
            problem.evaluate_batch(warm)
            before = engine.stats.snapshot()
            problem.evaluate_batch(warm + [(1, 1, 1, 1, 1, 1)])
            delta = engine.stats.snapshot() - before
            assert delta.model_evaluations == 1
            assert delta.vectorized_designs == 1
            assert delta.rows_skipped_cached == 1


class TestDegenerateBatches:
    """Empty, all-cached and duplicate-only batches never reach a kernel."""

    @pytest.mark.parametrize("backend", ["serial", "sharded"])
    def test_empty_batch(self, backend):
        with EvaluationEngine(backend=backend) as engine:
            problem = beacon_problem(engine)
            before = engine.stats.snapshot()
            assert problem.evaluate_batch([]) == []
            delta = engine.stats.snapshot() - before
            assert delta.model_evaluations == 0
            assert delta.vectorized_designs == 0

    @pytest.mark.parametrize("backend", ["serial", "sharded"])
    def test_all_cached_batch(self, backend):
        with EvaluationEngine(backend=backend) as engine:
            problem = beacon_problem(engine)
            genotypes = [(0, 0, 0, 0, 0, 0), (1, 1, 1, 1, 1, 1)]
            first = problem.evaluate_batch(genotypes)
            before = engine.stats.snapshot()
            again = problem.evaluate_batch(genotypes)
            delta = engine.stats.snapshot() - before
            assert delta.model_evaluations == 0
            assert delta.vectorized_designs == 0
            assert delta.genotype_cache_hits == len(genotypes)
            assert front_signature(again) == front_signature(first)

    @pytest.mark.parametrize("backend", ["serial", "sharded"])
    def test_duplicate_only_batch(self, backend):
        with EvaluationEngine(backend=backend) as engine:
            problem = beacon_problem(engine)
            genotype = (1, 0, 1, 0, 1, 0)
            before = engine.stats.snapshot()
            designs = problem.evaluate_batch([genotype] * 7)
            delta = engine.stats.snapshot() - before
            assert delta.model_evaluations == 1
            assert delta.genotype_cache_hits == 6
            assert len({front_signature([d])[0] for d in designs}) == 1

    def test_zero_length_gather_never_reaches_the_kernel(self):
        """The kernel itself early-returns on an empty or fully masked batch."""
        problem = beacon_problem(EvaluationEngine())
        kernel = problem.vectorized_kernel
        empty = kernel.evaluate_columns(problem.space.index_matrix([]))
        assert empty.objectives.shape == (0, problem.n_objectives)
        matrix = problem.space.index_matrix([(0, 0, 0, 0, 0, 0)])
        masked = kernel.evaluate_columns(matrix, cached_mask=np.array([True]))
        assert masked.objectives.shape == (0, problem.n_objectives)
        assert masked.feasible.shape == (0,)
        assert masked.violation_counts.shape == (0,)


class TestSharedArrayArena:
    """Kernel tables survive the shared-memory round trip bit for bit."""

    def test_roundtrip_and_adoption_preserve_results(self):
        problem = beacon_problem(EvaluationEngine())
        kernel = problem.vectorized_kernel
        tables = kernel.shareable_tables()
        assert tables, "the compiled kernel should expose column tables"
        arena = SharedArrayArena(tables)
        try:
            shm, views = attach_arena_views(arena.name, arena.manifest)
            try:
                for name, table in tables.items():
                    assert np.array_equal(views[name], table), name
                rng = np.random.default_rng(7)
                genotypes = [problem.space.random_genotype(rng) for _ in range(32)]
                matrix = problem.space.index_matrix(genotypes)
                want = kernel.evaluate_columns(matrix)
                kernel.adopt_shared_tables(views)
                got = kernel.evaluate_columns(matrix)
                assert np.array_equal(got.objectives, want.objectives)
                assert np.array_equal(got.feasible, want.feasible)
                assert np.array_equal(got.violation_counts, want.violation_counts)
            finally:
                shm.close()
        finally:
            arena.close()


class TestResourceLifecycle:
    """Pools and shared-memory segments are released deterministically."""

    def test_close_shuts_pool_and_unlinks_arena(self):
        engine = sharded_engine()
        problem = beacon_problem(engine)
        problem.evaluate_batch(
            [problem.space.random_genotype(np.random.default_rng(1)) for _ in range(16)]
        )
        backend = engine.backend
        assert backend._executor is not None
        assert backend._arena is not None
        arena_name = backend._arena.name
        engine.close()
        assert backend._executor is None
        assert backend._arena is None
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=arena_name)
        engine.close()  # idempotent

    def test_engine_context_manager_closes_the_backend(self):
        with EvaluationEngine(backend="process", max_workers=1) as engine:
            problem = beacon_problem(engine)
            problem.evaluate_batch([(0, 0, 0, 0, 0, 0)] * 2)
        assert engine.backend._executor is None

    def test_run_algorithm_can_close_the_engine(self):
        engine = sharded_engine()
        problem = beacon_problem(engine)
        result = run_algorithm(
            ExhaustiveSearch(problem, chunk_size=16), close_engine=True
        )
        assert result.front
        assert result.sharded_designs > 0
        assert engine.backend._executor is None
        assert engine.backend._arena is None

    def test_reusing_a_live_pool_for_another_problem_is_rejected(self):
        """Regression: the pool pins the first problem's pickled copy, so a
        second problem must be refused instead of silently evaluated against
        the wrong kernel."""
        backend = ShardedVectorizedBackend(max_workers=2)
        first_engine = EvaluationEngine(backend=backend)
        first = beacon_problem(first_engine)
        first.evaluate_batch([(1, 0, 1, 0, 1, 0)] * 2)
        second_engine = EvaluationEngine(backend=backend)
        second = csma_problem(second_engine)
        with pytest.raises(RuntimeError, match="different problem"):
            second.evaluate_batch([(1, 0, 1, 0, 1, 0)] * 2)
        # After close() the backend can be repurposed.
        backend.close()
        fresh = second.evaluate_batch([(1, 0, 1, 0, 1, 0)] * 2)
        reference = csma_problem(EvaluationEngine()).evaluate_batch(
            [(1, 0, 1, 0, 1, 0)] * 2
        )
        assert [d.objectives for d in fresh] == [d.objectives for d in reference]
        backend.close()

    def test_process_backend_also_rejects_pool_reuse(self):
        backend = ProcessBackend(max_workers=1)
        first = beacon_problem(EvaluationEngine(backend=backend, vectorized=False))
        first.evaluate_batch([(1, 0, 1, 0, 1, 0)] * 2)
        second = csma_problem(EvaluationEngine(backend=backend, vectorized=False))
        with pytest.raises(RuntimeError, match="different problem"):
            second.evaluate_batch([(1, 0, 1, 0, 1, 0)] * 2)
        backend.close()

    def test_columns_only_api_handles_an_empty_matrix(self):
        with sharded_engine() as engine:
            problem = beacon_problem(engine)
            backend = engine.backend
            columns = backend.evaluate_columns_sharded(
                problem, problem.space.index_matrix([])
            )
            assert columns.objectives.shape == (0, problem.n_objectives)
            assert columns.feasible.shape == (0,)
            assert columns.violation_counts.shape == (0,)

    def test_scalar_fallback_for_kernel_less_problems(self):
        """No kernel: the sharded pool runs the chunked scalar path instead."""
        serial = beacon_problem(EvaluationEngine())
        with sharded_engine() as engine:
            problem = WbsnDseProblem(
                build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
                **NODE_DOMAINS,
                payload_bytes=(60, 80),
                order_pairs=((4, 4), (4, 6)),
                engine=engine,
                vectorized=False,
            )
            rng = np.random.default_rng(2)
            genotypes = [problem.space.random_genotype(rng) for _ in range(24)]
            fast = problem.evaluate_batch(genotypes)
            slow = serial.evaluate_batch(genotypes)
            assert [d.objectives for d in fast] == [d.objectives for d in slow]
            assert engine.stats.sharded_designs == 0
            assert engine.stats.vectorized_designs == 0
            assert engine.stats.model_evaluations > 0


class TestMakeBackend:
    """Backend resolution edges (the silently-ignored max_workers bug)."""

    def test_instance_with_max_workers_is_rejected(self):
        for instance in (SerialBackend(), ProcessBackend(max_workers=1)):
            with pytest.raises(ValueError, match="max_workers"):
                make_backend(instance, max_workers=2)

    def test_engine_rejects_instance_plus_max_workers(self):
        with pytest.raises(ValueError, match="max_workers"):
            EvaluationEngine(backend=SerialBackend(), max_workers=2)

    def test_instance_without_max_workers_passes_through(self):
        backend = SerialBackend()
        assert make_backend(backend) is backend
        assert make_backend(backend, max_workers=None) is backend

    def test_sharded_name_resolves(self):
        backend = make_backend("sharded", max_workers=3)
        assert isinstance(backend, ShardedVectorizedBackend)
        assert backend.max_workers == 3
        assert backend.supports_columns
        backend.close()

    def test_invalid_min_rows_per_shard_rejected(self):
        with pytest.raises(ValueError):
            ShardedVectorizedBackend(min_rows_per_shard=0)


class TestWorkerSidePruning:
    """The worker-side-pruning protocol: dominated rows never cross the
    process boundary, and the fronts stay bitwise identical anyway."""

    @pytest.mark.parametrize("scenario", sorted(SCENARIOS))
    def test_columnar_sweep_prunes_in_workers_with_identical_fronts(
        self, scenario
    ):
        build = SCENARIOS[scenario]
        want = front_signature(
            ExhaustiveSearch(build(EvaluationEngine()), columnar=True).run()
        )
        with sharded_engine() as engine:
            front = ExhaustiveSearch(
                build(engine), chunk_size=16, columnar=True
            ).run()
            assert front_signature(front) == want, scenario
            stats = engine.stats
            assert stats.rows_pruned_in_workers > 0
            # Pruned rows were still evaluated — pruning changes what is
            # shipped, not what is computed.
            assert stats.sharded_designs > stats.rows_pruned_in_workers

    def test_parent_merge_input_is_bounded_by_shard_front_sizes(self):
        """The accounting identity behind the protocol: per batch, the rows
        the parent receives plus the rows pruned in workers equal the rows
        the workers computed — so the parent-side prune input is exactly
        Σ(shard front sizes)."""
        with sharded_engine() as engine:
            problem = beacon_problem(engine)
            genotypes = list(problem.space.enumerate_genotypes())
            before = engine.stats.snapshot()
            batch = problem.evaluate_batch_columns(genotypes, prune_to_front=True)
            delta = engine.stats - before
            assert delta.rows_pruned_in_workers > 0
            assert len(batch) + delta.rows_pruned_in_workers == len(genotypes)
            assert len(batch) < len(genotypes)

    def test_pruned_batch_front_matches_the_full_batch_front(self):
        """front(batch) == front(worker-pruned batch): every dropped row has
        a surviving witness, so downstream pruning cannot tell the paths
        apart — membership and ordering alike."""
        from repro.dse.pareto import pareto_front_indices

        with sharded_engine() as engine:
            problem = beacon_problem(engine)
            genotypes = list(problem.space.enumerate_genotypes())
            full = problem.evaluate_batch_columns(genotypes)
            engine.clear_caches()
            pruned = problem.evaluate_batch_columns(genotypes, prune_to_front=True)
        for batch in (full, pruned):
            rows = np.flatnonzero(batch.feasible)
            pool = batch.take(rows) if rows.size else batch
            front = pool.take(pareto_front_indices(pool.objectives))
            if batch is full:
                want = front
            else:
                assert front.objectives.tolist() == want.objectives.tolist()
                assert front.genotypes.tolist() == want.genotypes.tolist()
                assert front.feasible.tolist() == want.feasible.tolist()

    def test_include_infeasible_false_drops_infeasible_rows(self):
        with sharded_engine() as engine:
            problem = beacon_problem(engine)
            genotypes = list(problem.space.enumerate_genotypes())
            batch = problem.evaluate_batch_columns(
                genotypes, prune_to_front=True, include_infeasible=False
            )
            assert len(batch) > 0
            assert bool(batch.feasible.all())

    def test_feasibility_classes_are_pruned_separately(self):
        """An infeasible row must never eliminate a feasible one inside a
        worker, even when its objectives dominate."""
        from repro.engine.sharded import _local_front_rows

        objectives = np.asarray(
            [
                [0.0, 0.0],  # infeasible, dominates everything
                [1.0, 2.0],  # feasible front
                [2.0, 1.0],  # feasible front
                [3.0, 3.0],  # feasible, dominated by both feasible rows
                [5.0, 5.0],  # infeasible, dominated by row 0
            ]
        )
        feasible = np.asarray([False, True, True, True, False])
        kept = _local_front_rows(objectives, feasible, include_infeasible=True)
        # Feasible rows 1 and 2 survive despite the dominating infeasible
        # row 0; row 0 survives as the infeasible-class front.
        assert kept.tolist() == [0, 1, 2]
        dropped_feasible_only = _local_front_rows(
            objectives, feasible, include_infeasible=False
        )
        assert dropped_feasible_only.tolist() == [1, 2]

    def test_serial_backend_ignores_the_prune_hint(self):
        """On non-worker-pruning backends the hint is a no-op: the full
        batch contract (one row per genotype, in order) holds."""
        problem = beacon_problem(EvaluationEngine())
        genotypes = list(problem.space.enumerate_genotypes())
        batch = problem.evaluate_batch_columns(genotypes, prune_to_front=True)
        assert len(batch) == len(genotypes)
        assert problem.engine.stats.rows_pruned_in_workers == 0

    def test_cached_rows_pass_through_unpruned(self):
        """A warm re-sweep serves memoised rows as-is: cached rows are never
        pruned away (only freshly computed shard rows are)."""
        with sharded_engine() as engine:
            problem = beacon_problem(engine)
            genotypes = list(problem.space.enumerate_genotypes())
            first = problem.evaluate_batch_columns(genotypes, prune_to_front=True)
            before = engine.stats.snapshot()
            second = problem.evaluate_batch_columns(genotypes, prune_to_front=True)
            delta = engine.stats - before
            # Survivors were memoised; the re-sweep recomputes only the rows
            # the workers pruned away (they never reached the column memo).
            assert delta.rows_skipped_cached == len(first)
            assert first.objectives.tolist() == [
                row
                for row, key in zip(
                    second.objectives.tolist(),
                    second.genotypes.tolist(),
                )
                if tuple(key) in {tuple(k) for k in first.genotypes.tolist()}
            ]

    def test_run_algorithm_reports_worker_pruned_rows(self):
        from repro.dse.runner import run_algorithm

        with sharded_engine() as engine:
            problem = beacon_problem(engine)
            result = run_algorithm(
                ExhaustiveSearch(problem, chunk_size=16, columnar=True)
            )
            assert result.rows_pruned_in_workers > 0
            assert result.rows_pruned_in_workers == (
                engine.stats.rows_pruned_in_workers
            )
