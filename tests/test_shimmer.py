"""Tests of the Shimmer platform instantiation (Section 4.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.shimmer.applications import (
    REFERENCE_COMPRESSION_RATIO,
    build_application,
)
from repro.shimmer.battery import BatteryModel
from repro.shimmer.platform import (
    ECG_SAMPLING_RATE_HZ,
    SAMPLE_WIDTH_BYTES,
    ShimmerNodeConfig,
    ShimmerPlatform,
    build_case_study_network,
    build_shimmer_energy_model,
)
from repro.shimmer.prd_fit import (
    DEFAULT_CS_PRD_POLYNOMIAL,
    DEFAULT_DWT_PRD_POLYNOMIAL,
    PrdPolynomial,
    fit_prd_polynomial,
)


class TestPlatformConstants:
    def test_input_stream_is_375_bytes_per_second(self):
        assert ECG_SAMPLING_RATE_HZ * SAMPLE_WIDTH_BYTES == pytest.approx(375.0)

    def test_energy_model_uses_10kb_ram(self):
        model = build_shimmer_energy_model()
        assert model.ram_bytes == pytest.approx(10_240.0)

    def test_component_conversions_are_consistent(self):
        platform = ShimmerPlatform()
        mcu = platform.msp430.to_core_model()
        assert mcu.alpha_uc1_w_per_hz == pytest.approx(
            platform.msp430.supply_voltage_v * platform.msp430.active_current_per_hz_a
        )
        radio = platform.cc2420.to_core_model()
        assert radio.bit_rate_bps == pytest.approx(250_000.0)


class TestNodeConfig:
    def test_frequency_in_mhz(self):
        config = ShimmerNodeConfig(0.3, 8e6)
        assert config.microcontroller_frequency_mhz == pytest.approx(8.0)

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ShimmerNodeConfig(0.0, 8e6)
        with pytest.raises(ValueError):
            ShimmerNodeConfig(1.2, 8e6)
        with pytest.raises(ValueError):
            ShimmerNodeConfig(0.3, 0.0)


class TestApplications:
    def test_duty_cycle_constants_match_the_paper(self):
        """Duty = k / f with k ~= 2265.6 (DWT) and ~= 388.8 (CS) kcycles/s."""
        dwt = build_application("dwt")
        cs = build_application("cs")
        assert dwt.kilocycles_per_second == pytest.approx(2265.6, rel=0.03)
        assert cs.kilocycles_per_second == pytest.approx(388.8, rel=0.06)

    def test_dwt_is_infeasible_at_1mhz_and_feasible_at_8mhz(self):
        dwt = build_application("dwt")
        slow = dwt.resource_usage(375.0, ShimmerNodeConfig(0.3, 1e6))
        fast = dwt.resource_usage(375.0, ShimmerNodeConfig(0.3, 8e6))
        assert not slow.is_schedulable
        assert fast.is_schedulable

    def test_cs_is_feasible_at_every_platform_frequency(self):
        cs = build_application("cs")
        for frequency in (1e6, 2e6, 4e6, 8e6):
            usage = cs.resource_usage(375.0, ShimmerNodeConfig(0.3, frequency))
            assert usage.is_schedulable

    def test_output_stream_is_phi_in_times_cr(self):
        application = build_application("dwt")
        config = ShimmerNodeConfig(0.25, 8e6)
        assert application.output_stream_bytes_per_second(375.0, config) == pytest.approx(
            375.0 * 0.25
        )

    def test_quality_loss_decreases_with_cr(self):
        for kind in ("dwt", "cs"):
            application = build_application(kind)
            low = application.quality_loss(375.0, ShimmerNodeConfig(0.17, 8e6))
            high = application.quality_loss(375.0, ShimmerNodeConfig(0.38, 8e6))
            assert high < low

    def test_cs_quality_loss_is_higher_than_dwt(self):
        dwt = build_application("dwt")
        cs = build_application("cs")
        config = ShimmerNodeConfig(0.3, 8e6)
        assert cs.quality_loss(375.0, config) > dwt.quality_loss(375.0, config)

    def test_memory_footprints_fit_the_ram(self):
        for kind in ("dwt", "cs"):
            application = build_application(kind)
            assert application.memory_bytes < 10_240

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            build_application("fft")

    def test_validate_config_rejects_out_of_range_cr(self):
        application = build_application("dwt")
        with pytest.raises((ValueError, Exception)):
            application.validate_config(ShimmerNodeConfig(0.3, 8e6).__class__(1.5, 8e6))


class TestCaseStudyNetwork:
    def test_default_split_half_dwt_half_cs(self):
        nodes = build_case_study_network()
        kinds = [node.application.name for node in nodes]
        assert kinds == ["dwt", "dwt", "dwt", "cs", "cs", "cs"]

    def test_explicit_application_list(self):
        nodes = build_case_study_network(n_nodes=2, applications=("cs", "cs"))
        assert all(node.application.name == "cs" for node in nodes)

    def test_input_stream_of_every_node(self):
        nodes = build_case_study_network()
        assert all(
            node.input_stream_bytes_per_second == pytest.approx(375.0) for node in nodes
        )

    def test_mismatched_application_list_rejected(self):
        with pytest.raises(ValueError):
            build_case_study_network(n_nodes=3, applications=("dwt",))


class TestPrdFit:
    def test_default_polynomials_are_degree_five(self):
        assert DEFAULT_DWT_PRD_POLYNOMIAL.degree == 5
        assert DEFAULT_CS_PRD_POLYNOMIAL.degree == 5

    def test_fit_reproduces_anchor_points(self):
        ratios = np.linspace(0.15, 0.4, 8)
        prds = 50 * np.exp(-5 * ratios)
        polynomial = fit_prd_polynomial(ratios, prds, degree=5)
        for ratio, value in zip(ratios, prds):
            assert polynomial(ratio) == pytest.approx(value, rel=0.02)

    def test_out_of_range_ratios_are_clamped(self):
        polynomial = DEFAULT_CS_PRD_POLYNOMIAL
        assert polynomial(0.01) == pytest.approx(polynomial(polynomial.cr_min))
        assert polynomial(0.99) == pytest.approx(polynomial(polynomial.cr_max))

    def test_fit_requires_enough_points(self):
        with pytest.raises(ValueError):
            fit_prd_polynomial([0.2, 0.3], [10.0, 5.0], degree=5)

    def test_polynomial_never_returns_negative_prd(self):
        polynomial = PrdPolynomial(coefficients=(1.0, -1.0), cr_min=0.2, cr_max=0.4)
        assert polynomial(0.4) >= 0.0

    @settings(max_examples=30, deadline=None)
    @given(ratio=st.floats(min_value=0.17, max_value=0.38))
    def test_default_polynomials_are_monotonically_decreasing(self, ratio):
        step = 0.01
        if ratio + step > 0.38:
            return
        for polynomial in (DEFAULT_DWT_PRD_POLYNOMIAL, DEFAULT_CS_PRD_POLYNOMIAL):
            assert polynomial(ratio + step) <= polynomial(ratio) + 0.6


class TestBattery:
    def test_lifetime_scales_inversely_with_power(self):
        battery = BatteryModel()
        assert battery.lifetime_hours(2e-3) == pytest.approx(
            2 * battery.lifetime_hours(4e-3)
        )

    def test_case_study_node_lasts_days(self):
        battery = BatteryModel()
        assert 3.0 < battery.lifetime_days(4.4e-3) < 60.0

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            BatteryModel(capacity_mah=0.0)
        with pytest.raises(ValueError):
            BatteryModel().lifetime_hours(0.0)
