"""Tests of the synthetic ECG generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signals.ecg import DEFAULT_WAVES, ECGWave, SyntheticECG


class TestECGWave:
    def test_rejects_center_outside_unit_interval(self):
        with pytest.raises(ValueError):
            ECGWave("X", 1.0, 1.2, 0.01)

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            ECGWave("X", 1.0, 0.5, 0.0)

    def test_default_morphology_has_five_waves(self):
        assert [wave.name for wave in DEFAULT_WAVES] == ["P", "Q", "R", "S", "T"]


class TestSyntheticECG:
    def test_sample_count_matches_duration(self):
        record = SyntheticECG(sampling_rate_hz=250.0).generate(4.0)
        assert len(record.samples_mv) == 1000
        assert record.duration_s == pytest.approx(4.0)

    def test_generation_is_deterministic_for_a_seed(self):
        first = SyntheticECG(seed=5).generate(2.0)
        second = SyntheticECG(seed=5).generate(2.0)
        np.testing.assert_array_equal(first.samples_mv, second.samples_mv)

    def test_different_seeds_differ(self):
        first = SyntheticECG(seed=1).generate(2.0)
        second = SyntheticECG(seed=2).generate(2.0)
        assert not np.array_equal(first.samples_mv, second.samples_mv)

    def test_heart_rate_is_respected_on_average(self):
        record = SyntheticECG(heart_rate_bpm=60.0, hrv_std_s=0.0, seed=0).generate(30.0)
        assert record.heart_rate_bpm == pytest.approx(60.0, rel=0.05)

    def test_r_peaks_dominate_amplitude(self):
        record = SyntheticECG(noise_std_mv=0.0, baseline_wander_mv=0.0).generate(5.0)
        assert 0.9 < np.max(record.samples_mv) < 1.4

    def test_rejects_non_positive_duration(self):
        with pytest.raises(ValueError):
            SyntheticECG().generate(0.0)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            SyntheticECG(sampling_rate_hz=0.0)
        with pytest.raises(ValueError):
            SyntheticECG(heart_rate_bpm=-10.0)
        with pytest.raises(ValueError):
            SyntheticECG(hrv_std_s=-0.1)

    def test_quantized_record_has_codes_in_range(self):
        record = SyntheticECG(seed=3).generate_quantized(2.0, resolution_bits=12)
        assert record.codes is not None
        assert record.codes.min() >= 0
        assert record.codes.max() <= 4095

    def test_quantization_error_is_below_one_lsb(self):
        generator = SyntheticECG(seed=3)
        analogue = generator.generate(2.0)
        quantized = SyntheticECG(seed=3).generate_quantized(2.0, full_scale_mv=5.0)
        lsb = 5.0 / 4096
        assert np.max(np.abs(analogue.samples_mv - quantized.samples_mv)) <= lsb

    def test_powerline_component_appears_when_requested(self):
        clean = SyntheticECG(seed=0, powerline_mv=0.0).generate(2.0)
        noisy = SyntheticECG(seed=0, powerline_mv=0.2).generate(2.0)
        spectrum_clean = np.abs(np.fft.rfft(clean.samples_mv))
        spectrum_noisy = np.abs(np.fft.rfft(noisy.samples_mv))
        freqs = np.fft.rfftfreq(len(clean.samples_mv), 1.0 / 250.0)
        mains_bin = int(np.argmin(np.abs(freqs - 50.0)))
        assert spectrum_noisy[mains_bin] > 3.0 * spectrum_clean[mains_bin]

    @settings(max_examples=20, deadline=None)
    @given(
        duration=st.floats(min_value=1.0, max_value=6.0),
        heart_rate=st.floats(min_value=45.0, max_value=150.0),
    )
    def test_generation_never_produces_nan_or_inf(self, duration, heart_rate):
        record = SyntheticECG(heart_rate_bpm=heart_rate, seed=0).generate(duration)
        assert np.all(np.isfinite(record.samples_mv))
