"""Tests of the signal-quality metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.signals.quality import (
    compression_ratio,
    prd,
    prd_normalized,
    rmse,
    snr_db,
)

_signals = hnp.arrays(
    dtype=float,
    shape=st.integers(min_value=4, max_value=64),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
)


class TestPrd:
    def test_identical_signals_have_zero_prd(self):
        signal = np.array([1.0, -2.0, 3.0])
        assert prd(signal, signal) == 0.0

    def test_known_value(self):
        original = np.array([3.0, 4.0])
        reconstructed = np.array([0.0, 4.0])
        assert prd(original, reconstructed) == pytest.approx(60.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            prd(np.ones(3), np.ones(4))

    def test_zero_energy_rejected(self):
        with pytest.raises(ValueError):
            prd(np.zeros(4), np.ones(4))

    def test_prd_normalized_removes_offset_sensitivity(self):
        original = np.array([100.0, 101.0, 100.0, 99.0])
        reconstructed = original + 0.5
        assert prd_normalized(original, reconstructed) > prd(original, reconstructed)

    @settings(max_examples=50, deadline=None)
    @given(signal=_signals, scale=st.floats(min_value=0.01, max_value=10.0))
    def test_prd_is_scale_invariant(self, signal, scale):
        if np.linalg.norm(signal) < 1e-6:
            return
        noisy = signal + 0.1
        assert prd(signal * scale, noisy * scale) == pytest.approx(
            prd(signal, noisy), rel=1e-9
        )


class TestOtherMetrics:
    def test_rmse_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_snr_is_infinite_for_perfect_reconstruction(self):
        signal = np.array([1.0, 2.0, 3.0])
        assert snr_db(signal, signal) == float("inf")

    def test_snr_decreases_with_noise(self):
        rng = np.random.default_rng(0)
        signal = rng.normal(size=256)
        small = snr_db(signal, signal + rng.normal(0, 0.01, 256))
        large = snr_db(signal, signal + rng.normal(0, 0.1, 256))
        assert small > large

    def test_compression_ratio(self):
        assert compression_ratio(100, 25) == pytest.approx(0.25)

    def test_compression_ratio_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            compression_ratio(0, 1)
        with pytest.raises(ValueError):
            compression_ratio(10, -1)
