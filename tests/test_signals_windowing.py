"""Tests of the windowing helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.signals.windowing import pad_to_window, split_windows


class TestPadToWindow:
    def test_exact_multiple_is_unchanged(self):
        samples = np.arange(8.0)
        padded = pad_to_window(samples, 4)
        np.testing.assert_array_equal(padded, samples)

    def test_padding_repeats_last_sample(self):
        padded = pad_to_window(np.array([1.0, 2.0, 3.0]), 4)
        np.testing.assert_array_equal(padded, [1.0, 2.0, 3.0, 3.0])

    def test_empty_input_pads_with_zeros(self):
        padded = pad_to_window(np.array([]), 4)
        np.testing.assert_array_equal(padded, np.zeros(4))

    def test_rejects_non_positive_window(self):
        with pytest.raises(ValueError):
            pad_to_window(np.ones(4), 0)


class TestSplitWindows:
    def test_window_shape(self):
        windows = split_windows(np.arange(10.0), 4)
        assert windows.shape == (3, 4)

    def test_content_preserved(self):
        samples = np.arange(8.0)
        windows = split_windows(samples, 4)
        np.testing.assert_array_equal(windows.ravel(), samples)

    @settings(max_examples=50, deadline=None)
    @given(
        length=st.integers(min_value=1, max_value=200),
        window=st.integers(min_value=1, max_value=50),
    )
    def test_every_sample_is_kept(self, length, window):
        samples = np.arange(float(length))
        windows = split_windows(samples, window)
        flattened = windows.ravel()
        np.testing.assert_array_equal(flattened[:length], samples)
        assert windows.shape[1] == window
        assert windows.shape[0] == int(np.ceil(length / window))
