"""Property suite: the streaming random sweep changes memory, never results.

:class:`~repro.dse.random_search.RandomSearch` defaults to a *streaming*
columnar sweep — distinct genotypes are drawn lazily in chunk-sized blocks
and pruned into a running front, so the full sample list never exists in
memory.  The contract that makes this safe is bitwise parity with the
materialised one-shot path: evaluation consumes no randomness, so the draw
stream is a function of the initial RNG state alone, and the chunked
running-front pruning is order-identical to the one-shot front extraction.

This file pins that contract property-style, across seeds, chunk sizes,
resume-from-checkpoint and both MAC families (beacon-enabled GTS and
unslotted CSMA/CA).
"""

from __future__ import annotations

import pytest

from repro.dse.problem import WbsnDseProblem, csma_mac_parameterisation
from repro.dse.random_search import RandomSearch
from repro.dse.runner import run_algorithm
from repro.engine import (
    EvaluationEngine,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    inject_faults,
)
from repro.experiments.casestudy import (
    build_case_study_evaluator,
    build_csma_case_study_evaluator,
)

#: Small two-node spaces (64 configurations) keep the matrix fast.
NODE_DOMAINS = dict(
    compression_ratios=(0.2, 0.3),
    frequencies_hz=(4e6, 8e6),
)


def beacon_problem() -> WbsnDseProblem:
    return WbsnDseProblem(
        build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
        **NODE_DOMAINS,
        payload_bytes=(60, 80),
        order_pairs=((4, 4), (4, 6)),
        engine=EvaluationEngine(),
    )


def csma_problem() -> WbsnDseProblem:
    return WbsnDseProblem(
        build_csma_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
        **NODE_DOMAINS,
        mac_parameterisation=csma_mac_parameterisation(
            payload_bytes=(60, 80),
            backoff_exponent_pairs=((3, 5), (4, 6)),
        ),
        engine=EvaluationEngine(),
    )


FAMILIES = {"beacon": beacon_problem, "csma": csma_problem}


def front_signature(front):
    return [
        (design.genotype, design.objectives, design.feasible)
        for design in front
    ]


class TestDrawStreamParity:
    def test_stream_is_pure_rng_consumption(self):
        """Two same-seed searches stream the identical distinct sequence."""
        problem = beacon_problem()
        first = list(
            RandomSearch(problem, samples=96, seed=11)._draw_stream()
        )
        second = list(
            RandomSearch(problem, samples=96, seed=11)._draw_stream()
        )
        assert first == second
        assert len(set(first)) == len(first)  # distinct, first-draw order

    def test_lazy_interleaved_draws_match_the_eager_list(self):
        """Drawing chunk by chunk *between* evaluations sees the same
        stream as drawing everything up front (evaluation consumes no
        randomness)."""
        eager = list(
            RandomSearch(beacon_problem(), samples=80, seed=3)._draw_stream()
        )
        problem = beacon_problem()
        search = RandomSearch(problem, samples=80, seed=3, chunk_size=8)
        consumed: list[tuple[int, ...]] = []
        original = problem.evaluate_batch_columns

        def recording(genotypes, **kwargs):
            consumed.extend(tuple(g) for g in genotypes)
            return original(genotypes, **kwargs)

        problem.evaluate_batch_columns = recording
        search.run()
        assert consumed == eager

    def test_seen_set_not_the_sample_list_drives_dedup(self):
        """Heavy oversampling yields at most |space| distinct genotypes —
        the dedup is carried by the seen-set alone, never by comparing
        against a materialised sample list."""
        problem = beacon_problem()
        search = RandomSearch(problem, samples=500, seed=0)
        distinct = list(search._draw_stream())
        assert len(distinct) <= problem.space.size
        assert len(set(distinct)) == len(distinct)


@pytest.mark.parametrize("family", sorted(FAMILIES))
class TestStreamingFrontParity:
    @pytest.mark.parametrize("seed", [0, 7, 42])
    @pytest.mark.parametrize("chunk_size", [1, 5, 16, 1024])
    def test_streaming_matches_materialised_one_shot(
        self, family, seed, chunk_size
    ):
        reference = RandomSearch(
            FAMILIES[family](), samples=60, seed=seed, streaming=False
        ).run()
        streamed = RandomSearch(
            FAMILIES[family](),
            samples=60,
            seed=seed,
            chunk_size=chunk_size,
            streaming=True,
        ).run()
        assert front_signature(streamed) == front_signature(reference)

    def test_streaming_materialises_only_the_front(self, family):
        problem = FAMILIES[family]()
        result = run_algorithm(
            RandomSearch(problem, samples=60, seed=1, chunk_size=8)
        )
        assert result.designs_materialised == len(result.front)

    def test_scalar_path_still_matches_columnar(self, family):
        columnar = RandomSearch(FAMILIES[family](), samples=40, seed=2).run()
        scalar = RandomSearch(
            FAMILIES[family](), samples=40, seed=2, columnar=False
        ).run()
        assert front_signature(columnar) == front_signature(scalar)


class TestRunnerBackendThreading:
    def test_run_algorithm_threads_the_backend_choice(self):
        """``run_algorithm(array_backend=...)`` recompiles the kernel onto
        the named backend before the run, surfaces the resolved name on the
        result, and changes nothing about the front."""
        reference = run_algorithm(
            RandomSearch(beacon_problem(), samples=40, seed=4)
        )
        result = run_algorithm(
            RandomSearch(beacon_problem(), samples=40, seed=4),
            array_backend="numpy",
        )
        assert result.array_backend == "numpy"
        assert front_signature(result.front) == front_signature(
            reference.front
        )

    def test_backend_choice_needs_a_vectorized_kernel(self):
        problem = WbsnDseProblem(
            build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs")),
            **NODE_DOMAINS,
            payload_bytes=(60, 80),
            order_pairs=((4, 4), (4, 6)),
            engine=EvaluationEngine(),
            vectorized=False,
        )
        with pytest.raises(RuntimeError, match="no compiled vectorized"):
            run_algorithm(
                RandomSearch(problem, samples=10, seed=0),
                array_backend="numpy",
            )

    def test_unknown_backend_fails_before_the_run(self):
        with pytest.raises(KeyError, match="numpy"):
            run_algorithm(
                RandomSearch(beacon_problem(), samples=10, seed=0),
                array_backend="no-such-backend",
            )


@pytest.mark.parametrize("family", sorted(FAMILIES))
class TestStreamingResumeParity:
    def test_aborted_streaming_sweep_resumes_bitwise_identically(
        self, family, tmp_path
    ):
        reference = RandomSearch(
            FAMILIES[family](), samples=72, seed=9, streaming=False
        ).run()
        path = tmp_path / "rs.ckpt"
        plan = FaultPlan(
            [FaultSpec(site="checkpoint-saved", action="raise", at=(1,))]
        )
        with inject_faults(plan), pytest.raises(InjectedFault):
            RandomSearch(
                FAMILIES[family](),
                samples=72,
                seed=9,
                chunk_size=8,
                checkpoint_every=1,
                checkpoint_path=str(path),
            ).run()
        resumed = RandomSearch(
            FAMILIES[family](),
            samples=72,
            seed=9,
            chunk_size=8,
            checkpoint_every=1,
            checkpoint_path=str(path),
        ).run()
        assert front_signature(resumed) == front_signature(reference)

    def test_resume_skips_the_consumed_prefix(self, family, tmp_path):
        """The resumed run re-evaluates only post-cursor chunks — the
        checkpoint cursor counts distinct genotypes, and the replay
        discards exactly that prefix of the redrawn stream."""
        path = tmp_path / "rs.ckpt"
        plan = FaultPlan(
            [FaultSpec(site="checkpoint-saved", action="raise", at=(2,))]
        )
        with inject_faults(plan), pytest.raises(InjectedFault):
            run_algorithm(
                RandomSearch(
                    FAMILIES[family](),
                    samples=72,
                    seed=9,
                    chunk_size=8,
                    checkpoint_every=1,
                ),
                checkpoint_path=str(path),
            )
        resumed = run_algorithm(
            RandomSearch(
                FAMILIES[family](),
                samples=72,
                seed=9,
                chunk_size=8,
                checkpoint_every=1,
            ),
            checkpoint_path=str(path),
        )
        # Three chunks were absorbed before the abort; at most the rest of
        # the distinct stream (≤ 64-design space) is recomputed.
        assert resumed.model_evaluations < 64 - 16

    def test_resume_under_a_different_chunking_still_matches(
        self, family, tmp_path
    ):
        """Chunk size is a performance knob, not part of the draw stream:
        resuming with a different chunk size must not change the front."""
        reference = RandomSearch(
            FAMILIES[family](), samples=72, seed=9, streaming=False
        ).run()
        path = tmp_path / "rs.ckpt"
        plan = FaultPlan(
            [FaultSpec(site="checkpoint-saved", action="raise", at=(1,))]
        )
        with inject_faults(plan), pytest.raises(InjectedFault):
            RandomSearch(
                FAMILIES[family](),
                samples=72,
                seed=9,
                chunk_size=8,
                checkpoint_every=1,
                checkpoint_path=str(path),
            ).run()
        resumed = RandomSearch(
            FAMILIES[family](),
            samples=72,
            seed=9,
            chunk_size=16,
            checkpoint_every=1,
            checkpoint_path=str(path),
        ).run()
        assert front_signature(resumed) == front_signature(reference)
