"""Parity suite of the vectorized columnar fast path and the NumPy Pareto kernels.

The contract under test: the fast path is *floating-point-identical* to the
scalar path (same seed, same fronts, bit for bit), and the NumPy Pareto
kernels reproduce the original pure-Python implementations exactly —
membership *and* ordering.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse.exhaustive import ExhaustiveSearch
from repro.dse.nsga2 import Nsga2, Nsga2Settings
from repro.dse.pareto import (
    crowding_distance,
    dominates,
    non_dominated_sort,
    pareto_front_indices,
)
from repro.dse.problem import EvaluatedDesign, OptimizationProblem, WbsnDseProblem
from repro.dse.random_search import RandomSearch
from repro.dse.simulated_annealing import (
    MultiObjectiveSimulatedAnnealing,
    SimulatedAnnealingSettings,
)
from repro.dse.space import DesignSpace, ParameterDomain
from repro.engine import CachedNetworkEvaluator, EvaluationEngine
from repro.experiments.casestudy import (
    build_baseline_evaluator,
    build_case_study_evaluator,
)

#: Restricted domains keeping exhaustive parity sweeps fast.
SMALL_DOMAINS = dict(
    compression_ratios=(0.2, 0.3),
    frequencies_hz=(1e6, 8e6),
    payload_bytes=(60, 80),
    order_pairs=((4, 4), (4, 6)),
)


def case_study_pair(baseline: bool = False, **kwargs):
    """A (vectorized, scalar) problem pair over the same model."""
    build = build_baseline_evaluator if baseline else build_case_study_evaluator
    vectorized = WbsnDseProblem(build(), engine=EvaluationEngine(), **kwargs)
    scalar = WbsnDseProblem(
        build(), engine=EvaluationEngine(), vectorized=False, **kwargs
    )
    return vectorized, scalar


def front_signature(front):
    return sorted((design.genotype, design.objectives) for design in front)


# ---------------------------------------------------------------------------
# Scalar-vs-vectorized parity on the WBSN problem


class TestWbsnParity:
    @pytest.mark.parametrize("baseline", [False, True])
    def test_randomized_batch_is_bit_identical(self, baseline):
        vectorized, scalar = case_study_pair(baseline=baseline)
        rng = np.random.default_rng(7)
        genotypes = [vectorized.space.random_genotype(rng) for _ in range(256)]
        batch = vectorized.compute_designs_batch(genotypes)
        for genotype, fast in zip(genotypes, batch):
            slow = scalar.compute_design(genotype)
            assert fast.genotype == slow.genotype
            assert fast.objectives == slow.objectives  # exact, not approx
            assert fast.feasible == slow.feasible
            assert fast.phenotype["node_configs"] == slow.phenotype["node_configs"]
            assert fast.phenotype["mac_config"] == slow.phenotype["mac_config"]

    def test_violation_counts_match_the_scalar_evaluation(self):
        vectorized, scalar = case_study_pair()
        rng = np.random.default_rng(11)
        genotypes = [vectorized.space.random_genotype(rng) for _ in range(128)]
        columns = vectorized.vectorized_kernel.evaluate_columns(
            vectorized.space.index_matrix(genotypes)
        )
        saw_infeasible = False
        for genotype, count in zip(genotypes, columns.violation_counts.tolist()):
            node_configs, mac_config = scalar.decode(genotype)
            evaluation = scalar.evaluator.evaluate(node_configs, mac_config)
            assert len(evaluation.violations) == count
            saw_infeasible = saw_infeasible or count > 0
        assert saw_infeasible, "the sample should exercise infeasible designs"

    def test_engine_routes_batches_through_the_kernel(self):
        vectorized, _ = case_study_pair()
        rng = np.random.default_rng(3)
        genotypes = [vectorized.space.random_genotype(rng) for _ in range(64)]
        before = vectorized.engine.stats.snapshot()
        vectorized.evaluate_batch(genotypes)
        delta = vectorized.engine.stats.snapshot() - before
        assert delta.vectorized_designs > 0
        assert delta.vectorized_designs == delta.model_evaluations

    def test_single_evaluations_stay_scalar(self):
        vectorized, _ = case_study_pair()
        before = vectorized.engine.stats.snapshot()
        vectorized.evaluate(tuple(1 for _ in range(len(vectorized.space))))
        delta = vectorized.engine.stats.snapshot() - before
        assert delta.model_evaluations == 1
        assert delta.vectorized_designs == 0

    def test_vectorized_false_disables_the_kernel(self):
        _, scalar = case_study_pair()
        assert not scalar.supports_vectorized
        with pytest.raises(RuntimeError):
            scalar.compute_designs_batch([(0,) * len(scalar.space)])


class TestAlgorithmParity:
    """Same seed => identical fronts with the fast path on or off."""

    def _pair(self):
        evaluator = build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
        scalar_evaluator = build_case_study_evaluator(
            n_nodes=2, applications=("dwt", "cs")
        )
        fast = WbsnDseProblem(evaluator, **SMALL_DOMAINS)
        slow = WbsnDseProblem(scalar_evaluator, **SMALL_DOMAINS, vectorized=False)
        return fast, slow

    def test_exhaustive(self):
        fast, slow = self._pair()
        assert front_signature(ExhaustiveSearch(fast).run()) == front_signature(
            ExhaustiveSearch(slow).run()
        )

    def test_random_search(self):
        fast, slow = self._pair()
        assert front_signature(
            RandomSearch(fast, samples=150, seed=5).run()
        ) == front_signature(RandomSearch(slow, samples=150, seed=5).run())

    def test_nsga2(self):
        fast, slow = self._pair()
        settings = Nsga2Settings(population_size=16, generations=6, seed=9)
        assert front_signature(Nsga2(fast, settings).run()) == front_signature(
            Nsga2(slow, settings).run()
        )

    def test_simulated_annealing(self):
        fast, slow = self._pair()
        settings = SimulatedAnnealingSettings(iterations=200, seed=5, batch_size=8)
        assert front_signature(
            MultiObjectiveSimulatedAnnealing(fast, settings).run()
        ) == front_signature(
            MultiObjectiveSimulatedAnnealing(slow, settings).run()
        )


# ---------------------------------------------------------------------------
# Engine wiring on a synthetic (non-WBSN) problem


class SyntheticVectorProblem(OptimizationProblem):
    """A toy problem with hand-written scalar and columnar compute paths."""

    def __init__(self, supports_vectorized: bool = True) -> None:
        self.space = DesignSpace(
            [
                ParameterDomain("x", tuple(range(8))),
                ParameterDomain("y", tuple(range(8))),
            ]
        )
        self.n_objectives = 2
        self.evaluations = 0
        self.supports_vectorized = supports_vectorized
        self.batch_calls = 0
        self.engine = EvaluationEngine().bind(self)

    def evaluate(self, genotype):
        design = self.engine.evaluate(genotype)
        self.evaluations += 1
        return design

    def evaluate_batch(self, genotypes):
        designs = self.engine.evaluate_many(genotypes)
        self.evaluations += len(designs)
        return designs

    def compute_design(self, genotype):
        x, y = (int(gene) for gene in genotype)
        return EvaluatedDesign(
            genotype=self.space.validate_genotype(genotype),
            objectives=(float(x + y), float(14 - x - y)),
            feasible=True,
            phenotype={"x": x, "y": y},
        )

    def compute_designs_batch(self, genotypes):
        self.batch_calls += 1
        matrix = self.space.index_matrix(genotypes)
        first = matrix[:, 0] + matrix[:, 1]
        objectives = np.stack([first.astype(float), 14.0 - first], axis=1)
        return [
            EvaluatedDesign(
                genotype=tuple(row),
                objectives=tuple(objective_row),
                feasible=True,
                phenotype={"x": row[0], "y": row[1]},
            )
            for row, objective_row in zip(matrix.tolist(), objectives.tolist())
        ]


class TestEngineWiring:
    def test_batches_use_the_problem_kernel(self):
        problem = SyntheticVectorProblem()
        genotypes = [(x, y) for x in range(8) for y in range(8)]
        designs = problem.evaluate_batch(genotypes)
        assert problem.batch_calls == 1
        assert problem.engine.stats.vectorized_designs == len(genotypes)
        scalar = [problem.compute_design(genotype) for genotype in genotypes]
        assert [d.objectives for d in designs] == [d.objectives for d in scalar]

    def test_problems_without_kernel_fall_back_to_scalar(self):
        problem = SyntheticVectorProblem(supports_vectorized=False)
        problem.evaluate_batch([(1, 2), (3, 4)])
        assert problem.batch_calls == 0
        assert problem.engine.stats.vectorized_designs == 0
        assert problem.engine.stats.model_evaluations == 2

    def test_engine_flag_forces_the_scalar_path(self):
        problem = SyntheticVectorProblem()
        problem.engine.vectorized_enabled = False
        problem.evaluate_batch([(1, 2), (3, 4)])
        assert problem.batch_calls == 0
        assert problem.engine.stats.vectorized_designs == 0

    def test_genotype_cache_cooperates_with_the_kernel(self):
        problem = SyntheticVectorProblem()
        problem.evaluate_batch([(1, 2), (1, 2), (3, 4)])
        stats = problem.engine.stats
        # Only the two distinct misses reached the kernel.
        assert stats.vectorized_designs == 2
        assert stats.genotype_cache_hits == 1


# ---------------------------------------------------------------------------
# NumPy Pareto kernels against the original pure-Python implementations


def reference_front_indices(objectives):
    """The seed repository's pure-Python front extraction."""
    points = [tuple(point) for point in objectives]
    front = []
    for index, candidate in enumerate(points):
        dominated = False
        for other_index, other in enumerate(points):
            if other_index == index:
                continue
            if dominates(other, candidate) or (
                other == candidate and other_index < index
            ):
                dominated = True
                break
        if not dominated:
            front.append(index)
    return front


def reference_non_dominated_sort(objectives):
    """The seed repository's pure-Python fast non-dominated sorting."""
    count = len(objectives)
    dominated_by = [[] for _ in range(count)]
    domination_count = [0] * count
    fronts = [[]]
    for p in range(count):
        for q in range(count):
            if p == q:
                continue
            if dominates(objectives[p], objectives[q]):
                dominated_by[p].append(q)
            elif dominates(objectives[q], objectives[p]):
                domination_count[p] += 1
        if domination_count[p] == 0:
            fronts[0].append(p)
    current = 0
    while fronts[current]:
        next_front = []
        for p in fronts[current]:
            for q in dominated_by[p]:
                domination_count[q] -= 1
                if domination_count[q] == 0:
                    next_front.append(q)
        current += 1
        fronts.append(next_front)
    return [front for front in fronts if front]


_objective_sets = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
    ).map(lambda point: tuple(float(v) for v in point)),
    min_size=1,
    max_size=40,
)


class TestParetoKernelEquivalence:
    @settings(max_examples=120, deadline=None)
    @given(points=_objective_sets)
    def test_front_indices_match_the_reference(self, points):
        assert pareto_front_indices(points) == reference_front_indices(points)

    @settings(max_examples=120, deadline=None)
    @given(points=_objective_sets)
    def test_non_dominated_sort_matches_the_reference_ordering(self, points):
        assert non_dominated_sort(points) == reference_non_dominated_sort(points)

    def test_infinite_objectives_are_handled(self):
        points = [(1.0, np.inf), (1.0, 2.0), (np.inf, np.inf), (0.5, np.inf)]
        assert pareto_front_indices(points) == reference_front_indices(points)
        assert non_dominated_sort(points) == reference_non_dominated_sort(points)

    def test_large_sets_use_the_hierarchical_path(self):
        rng = np.random.default_rng(0)
        points = [tuple(row) for row in rng.random((1500, 3))]
        fast = pareto_front_indices(points)
        assert fast == reference_front_indices(points)

    def test_anti_chain_degenerate_case(self):
        # Every point mutually non-dominated: block pruning cannot shrink.
        count = 1200
        points = [(float(i), float(count - i)) for i in range(count)]
        assert pareto_front_indices(points) == list(range(count))

    @settings(max_examples=60, deadline=None)
    @given(points=_objective_sets)
    def test_crowding_distance_extremes_and_interiors(self, points):
        distances = crowding_distance(points)
        assert len(distances) == len(points)
        assert all(d >= 0 for d in distances)

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            pareto_front_indices([(1.0, 2.0), (1.0,)])


# ---------------------------------------------------------------------------
# Bounded node cache (LRU) and NodeConfigLike


class TestLruNodeCache:
    def _evaluate_some(self, max_entries):
        evaluator = build_case_study_evaluator(n_nodes=2, applications=("dwt", "cs"))
        engine = EvaluationEngine(
            node_cache_max_entries=max_entries, vectorized=False
        )
        problem = WbsnDseProblem(
            evaluator, **SMALL_DOMAINS, engine=engine, vectorized=False
        )
        genotypes = list(problem.space.enumerate_genotypes())
        problem.evaluate_batch(genotypes)
        return problem

    def test_cache_stays_bounded_and_counts_evictions(self):
        problem = self._evaluate_some(max_entries=4)
        assert problem.evaluator.cache_size <= 4
        assert problem.engine.stats.node_cache_evictions > 0

    def test_unbounded_cache_never_evicts(self):
        problem = self._evaluate_some(max_entries=None)
        assert problem.engine.stats.node_cache_evictions == 0

    def test_bounded_cache_preserves_results(self):
        bounded = self._evaluate_some(max_entries=2)
        unbounded = self._evaluate_some(max_entries=None)
        assert front_signature(
            ExhaustiveSearch(bounded).run()
        ) == front_signature(ExhaustiveSearch(unbounded).run())

    def test_lru_eviction_order(self):
        from repro.experiments.casestudy import DEFAULT_MAC_CONFIG
        from repro.shimmer.platform import ShimmerNodeConfig

        evaluator = build_case_study_evaluator(n_nodes=1, applications=("dwt",))
        cached = CachedNetworkEvaluator(evaluator, max_entries=2)
        configs = [[ShimmerNodeConfig(ratio, 8e6)] for ratio in (0.2, 0.25, 0.3)]
        mac = DEFAULT_MAC_CONFIG
        cached.evaluate(configs[0], mac)
        cached.evaluate(configs[1], mac)
        cached.evaluate(configs[0], mac)  # refresh 0 -> 1 becomes LRU
        cached.evaluate(configs[2], mac)  # evicts 1
        calls_before = cached.stats.node_model_calls
        cached.evaluate(configs[0], mac)  # still cached
        assert cached.stats.node_model_calls == calls_before
        cached.evaluate(configs[1], mac)  # was evicted -> recomputed
        assert cached.stats.node_model_calls == calls_before + 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            EvaluationEngine(node_cache_max_entries=0)
        with pytest.raises(ValueError):
            CachedNetworkEvaluator(
                build_case_study_evaluator(n_nodes=1, applications=("dwt",)),
                max_entries=-1,
            )


class TestNodeConfigLike:
    def test_duck_typed_configs_evaluate(self):
        from repro.core.evaluator import NodeConfigLike

        class CustomConfig:
            compression_ratio = 0.3

            @property
            def microcontroller_frequency_hz(self):
                return 8e6

            def __hash__(self):
                return hash((self.compression_ratio, 8e6))

        config = CustomConfig()
        assert isinstance(config, NodeConfigLike)
        evaluator = build_case_study_evaluator(n_nodes=1, applications=("dwt",))
        from repro.experiments.casestudy import DEFAULT_MAC_CONFIG

        evaluation = evaluator.evaluate([config], DEFAULT_MAC_CONFIG)
        assert evaluation.objectives.energy_w > 0
