"""Parity suite of the vectorized fast path for CSMA/CA-backed problems.

The mirror of ``tests/test_vectorized.py`` for the unslotted CSMA/CA MAC
model: the columnar fast path must be *floating-point-identical* to the
scalar path (same seed, same fronts, bit for bit) for contention-based
problems across all four DSE algorithms, and caching must stay semantically
invisible (cache-on/off front identity).  The suite also covers the
protocol-based discovery of MAC column kernels.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.evaluator import WBSNEvaluator
from repro.core.mac_abstraction import resolve_mac_column_kernels
from repro.core.vectorized import VectorizedUnsupported, WbsnVectorizedKernel
from repro.dse.exhaustive import ExhaustiveSearch
from repro.dse.nsga2 import Nsga2, Nsga2Settings
from repro.dse.problem import WbsnDseProblem, csma_mac_parameterisation
from repro.dse.random_search import RandomSearch
from repro.dse.simulated_annealing import (
    MultiObjectiveSimulatedAnnealing,
    SimulatedAnnealingSettings,
)
from repro.engine import EvaluationEngine
from repro.experiments.casestudy import (
    build_csma_baseline_evaluator,
    build_csma_case_study_evaluator,
)
from repro.mac802154.csma import UnslottedCsmaMacModel
from repro.mac802154.model import BeaconEnabledMacModel
from repro.shimmer.platform import build_case_study_network

#: Restricted node-knob domains keeping exhaustive parity sweeps fast.
SMALL_DOMAINS = dict(
    compression_ratios=(0.2, 0.3),
    frequencies_hz=(4e6, 8e6),
)

#: Restricted MAC domains of the small CSMA problems.
SMALL_CSMA_MAC = dict(
    payload_bytes=(60, 80),
    backoff_exponent_pairs=((3, 5), (4, 6)),
)


def csma_problem(
    baseline: bool = False,
    vectorized: bool = True,
    n_nodes: int = 6,
    engine: EvaluationEngine | None = None,
    **kwargs,
) -> WbsnDseProblem:
    build = build_csma_baseline_evaluator if baseline else build_csma_case_study_evaluator
    return WbsnDseProblem(
        build(n_nodes=n_nodes),
        mac_parameterisation=csma_mac_parameterisation(),
        engine=engine if engine is not None else EvaluationEngine(),
        vectorized=vectorized,
        **kwargs,
    )


def small_csma_pair(engine_factory=EvaluationEngine, **kwargs):
    """A (vectorized, scalar) 2-node CSMA problem pair over the same model."""

    def build(vectorized: bool) -> WbsnDseProblem:
        evaluator = build_csma_case_study_evaluator(
            n_nodes=2, applications=("dwt", "cs")
        )
        return WbsnDseProblem(
            evaluator,
            **SMALL_DOMAINS,
            mac_parameterisation=csma_mac_parameterisation(**SMALL_CSMA_MAC),
            vectorized=vectorized,
            engine=engine_factory(),
            **kwargs,
        )

    return build(True), build(False)


def front_signature(front):
    return sorted((design.genotype, design.objectives) for design in front)


# ---------------------------------------------------------------------------
# Scalar-vs-vectorized parity on CSMA-backed problems


class TestCsmaParity:
    @pytest.mark.parametrize("baseline", [False, True])
    def test_randomized_batch_is_bit_identical(self, baseline):
        vectorized = csma_problem(baseline=baseline)
        scalar = csma_problem(baseline=baseline, vectorized=False)
        assert vectorized.supports_vectorized
        rng = np.random.default_rng(7)
        genotypes = [vectorized.space.random_genotype(rng) for _ in range(256)]
        batch = vectorized.compute_designs_batch(genotypes)
        for genotype, fast in zip(genotypes, batch):
            slow = scalar.compute_design(genotype)
            assert fast.genotype == slow.genotype
            assert fast.objectives == slow.objectives  # exact, not approx
            assert fast.feasible == slow.feasible
            assert fast.phenotype["node_configs"] == slow.phenotype["node_configs"]
            assert fast.phenotype["mac_config"] == slow.phenotype["mac_config"]

    def test_violation_counts_match_the_scalar_evaluation(self):
        vectorized = csma_problem()
        scalar = csma_problem(vectorized=False)
        rng = np.random.default_rng(11)
        genotypes = [vectorized.space.random_genotype(rng) for _ in range(128)]
        columns = vectorized.vectorized_kernel.evaluate_columns(
            vectorized.space.index_matrix(genotypes)
        )
        saw_infeasible = False
        for genotype, count in zip(genotypes, columns.violation_counts.tolist()):
            node_configs, mac_config = scalar.decode(genotype)
            evaluation = scalar.evaluator.evaluate(node_configs, mac_config)
            assert len(evaluation.violations) == count
            saw_infeasible = saw_infeasible or count > 0
        assert saw_infeasible, "the sample should exercise infeasible designs"

    def test_engine_routes_csma_batches_through_the_kernel(self):
        """``vectorized_designs`` counts CSMA batches — no silent fallback."""
        problem = csma_problem()
        rng = np.random.default_rng(3)
        genotypes = [problem.space.random_genotype(rng) for _ in range(64)]
        before = problem.engine.stats.snapshot()
        problem.evaluate_batch(genotypes)
        delta = problem.engine.stats.snapshot() - before
        assert delta.vectorized_designs > 0
        assert delta.vectorized_designs == delta.model_evaluations

    def test_single_evaluations_stay_scalar(self):
        problem = csma_problem()
        before = problem.engine.stats.snapshot()
        problem.evaluate(tuple(1 for _ in range(len(problem.space))))
        delta = problem.engine.stats.snapshot() - before
        assert delta.model_evaluations == 1
        assert delta.vectorized_designs == 0


class TestMacKernelDiscovery:
    """Column support is discovered via the protocol, not hard-coded."""

    def test_both_shipped_macs_advertise_kernels(self):
        assert resolve_mac_column_kernels(BeaconEnabledMacModel()) is not None
        assert resolve_mac_column_kernels(UnslottedCsmaMacModel(6)) is not None

    def test_scalar_only_mac_is_rejected_by_compile(self):
        class ScalarOnlyCsma(UnslottedCsmaMacModel):
            def column_kernels(self):
                return None

        nodes = build_case_study_network(n_nodes=2, applications=("dwt", "cs"))
        evaluator = WBSNEvaluator(nodes, ScalarOnlyCsma(2), theta=0.5)
        problem = WbsnDseProblem(
            evaluator,
            **SMALL_DOMAINS,
            mac_parameterisation=csma_mac_parameterisation(**SMALL_CSMA_MAC),
        )
        # compile fell back: the problem still works, on the scalar path.
        assert not problem.supports_vectorized
        assert problem.evaluate(tuple(0 for _ in range(len(problem.space)))).objectives

    def test_delegated_kernels_take_the_fast_path(self):
        class DelegatingCsma(UnslottedCsmaMacModel):
            """Kernels served by a separate object, as the hook permits."""

            def column_kernels(self):
                return UnslottedCsmaMacModel(
                    self.n_contenders, self.max_backoffs, self.max_frame_retries
                )

        nodes = build_case_study_network(n_nodes=2, applications=("dwt", "cs"))
        evaluator = WBSNEvaluator(nodes, DelegatingCsma(2), theta=0.5)
        problem = WbsnDseProblem(
            evaluator,
            **SMALL_DOMAINS,
            mac_parameterisation=csma_mac_parameterisation(**SMALL_CSMA_MAC),
        )
        assert problem.supports_vectorized
        reference, _ = small_csma_pair()
        genotypes = list(problem.space.enumerate_genotypes())
        delegated = problem.compute_designs_batch(genotypes)
        direct = reference.compute_designs_batch(genotypes)
        assert [d.objectives for d in delegated] == [d.objectives for d in direct]


class TestCsmaAlgorithmParity:
    """Same seed => identical fronts with the fast path on or off."""

    def test_exhaustive(self):
        fast, slow = small_csma_pair()
        assert front_signature(ExhaustiveSearch(fast).run()) == front_signature(
            ExhaustiveSearch(slow).run()
        )

    def test_random_search(self):
        fast, slow = small_csma_pair()
        assert front_signature(
            RandomSearch(fast, samples=150, seed=5).run()
        ) == front_signature(RandomSearch(slow, samples=150, seed=5).run())

    def test_nsga2(self):
        fast, slow = small_csma_pair()
        settings = Nsga2Settings(population_size=16, generations=6, seed=9)
        assert front_signature(Nsga2(fast, settings).run()) == front_signature(
            Nsga2(slow, settings).run()
        )

    def test_simulated_annealing(self):
        fast, slow = small_csma_pair()
        settings = SimulatedAnnealingSettings(iterations=200, seed=5, batch_size=8)
        assert front_signature(
            MultiObjectiveSimulatedAnnealing(fast, settings).run()
        ) == front_signature(
            MultiObjectiveSimulatedAnnealing(slow, settings).run()
        )


class TestCsmaCacheIdentity:
    """Caches on or off, the CSMA fronts stay bitwise identical."""

    def _cached_and_uncached(self):
        cached, _ = small_csma_pair()
        uncached, _ = small_csma_pair(
            engine_factory=lambda: EvaluationEngine(
                genotype_cache=False, node_cache=False
            )
        )
        return cached, uncached

    def test_exhaustive_identical(self):
        cached, uncached = self._cached_and_uncached()
        assert front_signature(ExhaustiveSearch(cached).run()) == front_signature(
            ExhaustiveSearch(uncached).run()
        )

    def test_nsga2_identical(self):
        cached, uncached = self._cached_and_uncached()
        settings = Nsga2Settings(population_size=16, generations=6, seed=9)
        assert front_signature(Nsga2(cached, settings).run()) == front_signature(
            Nsga2(uncached, settings).run()
        )

    def test_simulated_annealing_identical(self):
        cached, uncached = self._cached_and_uncached()
        settings = SimulatedAnnealingSettings(iterations=200, seed=5, batch_size=8)
        assert front_signature(
            MultiObjectiveSimulatedAnnealing(cached, settings).run()
        ) == front_signature(
            MultiObjectiveSimulatedAnnealing(uncached, settings).run()
        )

    def test_random_search_identical(self):
        cached, uncached = self._cached_and_uncached()
        assert front_signature(
            RandomSearch(cached, samples=120, seed=4).run()
        ) == front_signature(RandomSearch(uncached, samples=120, seed=4).run())


class TestCsmaKernelCompile:
    def test_compile_validates_every_reachable_mac_config(self):
        """The kernel's MAC table covers exactly the reachable cross product."""
        problem, _ = small_csma_pair()
        kernel = problem.vectorized_kernel
        assert isinstance(kernel, WbsnVectorizedKernel)
        assert len(kernel._mac_configs) == 4  # 2 payloads x 2 backoff windows

    def test_unsupported_objective_component_is_rejected(self):
        evaluator = build_csma_case_study_evaluator(
            n_nodes=2, applications=("dwt", "cs")
        )
        problem, _ = small_csma_pair()
        with pytest.raises(VectorizedUnsupported):
            WbsnVectorizedKernel.compile(
                network=evaluator,
                node_parameters=[
                    {"compression_ratio": 0, "frequency_hz": 1},
                    {"compression_ratio": 2, "frequency_hz": 3},
                ],
                frequency_column="frequency_hz",
                node_config_factory=lambda _i, values: WbsnDseProblem.build_node_config(
                    values
                ),
                mac_positions=(4, 5),
                mac_config_factory=WbsnDseProblem.build_csma_mac_config,
                domains=problem.space.domains,
                objective_components=("energy", "latency"),
            )
